// Request batching through the agreement path.
//
// Covers the batching contract end to end: batches cut by size and by
// timer, singleton batches behaving exactly like the unbatched path, view
// changes carrying an in-flight (prepared but uncommitted) batch, and
// batched-vs-unbatched result equivalence for a full Spider deployment
// under the same seeded World.
#include <gtest/gtest.h>

#include "consensus/pbft_replica.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

namespace spider {
namespace {

Bytes req(int i) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(i));
  w.str("batched-request");
  return std::move(w).take();
}

/// PBFT host recording batch-granular deliveries plus the flattened
/// per-request stream derived from them.
class BatchHost : public ComponentHost {
 public:
  BatchHost(World& w, Site site) : ComponentHost(w, w.allocate_id(), site) {}

  void start(PbftConfig cfg) {
    replica = std::make_unique<PbftReplica>(
        *this, std::move(cfg),
        PbftReplica::BatchDeliverFn([this](SeqNr first, const std::vector<Bytes>& batch) {
          batches.emplace_back(first, batch);
          SeqNr s = first;
          for (const Bytes& m : batch) flat.emplace_back(s++, m);
        }));
  }

  std::unique_ptr<PbftReplica> replica;
  std::vector<std::pair<SeqNr, std::vector<Bytes>>> batches;
  std::vector<std::pair<SeqNr, Bytes>> flat;
};

struct BatchGroup {
  World world;
  std::vector<std::unique_ptr<BatchHost>> hosts;

  BatchGroup(std::uint64_t max_batch, Duration batch_delay, std::uint64_t seed = 1,
             std::uint32_t n = 4, std::uint32_t f = 1)
      : world(seed) {
    std::vector<NodeId> ids;
    for (std::uint32_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<BatchHost>(
          world, Site{Region::Virginia, static_cast<std::uint8_t>(i % 4)}));
      ids.push_back(hosts.back()->id());
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      PbftConfig cfg;
      cfg.replicas = ids;
      cfg.my_index = i;
      cfg.f = f;
      cfg.max_batch = max_batch;
      cfg.batch_delay = batch_delay;
      cfg.request_timeout = kSecond;
      cfg.view_change_timeout = 2 * kSecond;
      hosts[i]->start(cfg);
    }
  }

  void order_everywhere(const Bytes& m) {
    for (auto& h : hosts) h->replica->order(m);
  }
};

TEST(Batching, BatchCutBySize) {
  // batch_delay is huge: only the size trigger can cut.
  BatchGroup g(4, 10 * kSecond);
  for (int i = 0; i < 4; ++i) g.order_everywhere(req(i));
  g.world.run_for(kSecond);

  for (auto& h : g.hosts) {
    ASSERT_EQ(h->batches.size(), 1u);
    EXPECT_EQ(h->batches[0].first, 1u);  // first logical seq
    EXPECT_EQ(h->batches[0].second.size(), 4u);
    EXPECT_EQ(h->batches, g.hosts[0]->batches);
  }
  // Flattened stream is gap-free and request-granular.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(g.hosts[0]->flat[i].first, i + 1);
  }
}

TEST(Batching, BatchCutByTimer) {
  // 3 pending < max_batch 8: only the timer can cut.
  BatchGroup g(8, 50 * kMillisecond);
  for (int i = 0; i < 3; ++i) g.order_everywhere(req(i));

  g.world.run_for(20 * kMillisecond);
  for (auto& h : g.hosts) EXPECT_TRUE(h->batches.empty()) << "cut before batch_delay expired";

  g.world.run_for(kSecond);
  for (auto& h : g.hosts) {
    ASSERT_EQ(h->batches.size(), 1u);
    EXPECT_EQ(h->batches[0].first, 1u);
    EXPECT_EQ(h->batches[0].second.size(), 3u);  // partial batch, timer-cut
  }
}

TEST(Batching, SingletonBatchesMatchUnbatchedPath) {
  // max_batch = 1 must reproduce the unbatched per-request path exactly:
  // same seed, same workload, compared against a per-request DeliverFn
  // consumer (the legacy Agreement contract).
  BatchGroup batched(1, 0, /*seed=*/9);

  World world(9);
  struct Host : ComponentHost {
    using ComponentHost::ComponentHost;
    std::unique_ptr<PbftReplica> replica;
    std::vector<std::pair<SeqNr, Bytes>> delivered;
  };
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < 4; ++i) {
    hosts.push_back(std::make_unique<Host>(world, world.allocate_id(),
                                           Site{Region::Virginia, static_cast<std::uint8_t>(i % 4)}));
    ids.push_back(hosts.back()->id());
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    PbftConfig cfg;
    cfg.replicas = ids;
    cfg.my_index = i;
    cfg.f = 1;
    cfg.request_timeout = kSecond;
    cfg.view_change_timeout = 2 * kSecond;
    Host* h = hosts[i].get();
    h->replica = std::make_unique<PbftReplica>(*h, cfg, [h](SeqNr s, BytesView m) {
      h->delivered.emplace_back(s, to_bytes(m));
    });
  }

  for (int i = 0; i < 20; ++i) {
    Bytes m = req(i);
    batched.order_everywhere(m);
    for (auto& h : hosts) h->replica->order(m);
  }
  batched.world.run_for(5 * kSecond);
  world.run_for(5 * kSecond);

  ASSERT_EQ(batched.hosts[0]->flat.size(), 20u);
  for (auto& h : batched.hosts) {
    EXPECT_EQ(h->flat, hosts[0]->delivered);
    for (const auto& b : h->batches) EXPECT_EQ(b.second.size(), 1u);
  }
}

TEST(Batching, ViewChangeCarriesInFlightBatch) {
  // A full batch reaches prepared (but not committed) state, the primary
  // goes silent, and the next view must re-propose the whole batch from
  // the prepared certificates carried in the view-change messages.
  BatchGroup g(4, 10 * kSecond, /*seed=*/5);
  g.world.net().set_node_down(g.hosts[3]->id(), true);  // only 3 live replicas

  for (int i = 0; i < 4; ++i) g.order_everywhere(req(i));
  // The primary cut the batch (size trigger) and broadcast the pre-prepare;
  // muting it now suppresses its commit, so followers h1/h2 reach prepared
  // with only 2 commit votes: the batch stays in flight.
  g.hosts[0]->replica->mute = true;
  g.world.run_for(3 * kSecond);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_TRUE(g.hosts[i]->flat.empty()) << "batch must not commit without the primary";
  }

  // The revived follower supplies the third view-change vote.
  g.world.net().set_node_down(g.hosts[3]->id(), false);
  g.world.run_for(20 * kSecond);

  for (std::size_t i = 1; i < 4; ++i) {
    auto& h = g.hosts[i];
    ASSERT_EQ(h->flat.size(), 4u) << "replica " << i;
    EXPECT_GE(h->replica->view(), 1u);
    EXPECT_EQ(h->flat, g.hosts[1]->flat);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(h->flat[k].first, k + 1);
      EXPECT_EQ(h->flat[k].second, req(static_cast<int>(k)));
    }
    // The prepared batch survived the view change as one instance.
    ASSERT_EQ(h->batches.size(), 1u);
    EXPECT_EQ(h->batches[0].second.size(), 4u);
  }
}

// ---- Spider end-to-end equivalence --------------------------------------

struct SpiderRun {
  std::vector<bool> write_ok;
  Bytes app_snapshot;  // KV state of one execution replica
  bool all_replicas_agree = false;
};

SpiderRun run_spider_workload(std::uint64_t max_batch) {
  World world(77);  // identical seed for every batching configuration
  SpiderTopology topo;
  topo.exec_regions = {Region::Virginia, Region::Tokyo};
  topo.max_batch = max_batch;
  topo.batch_delay = max_batch > 1 ? 2 * kMillisecond : 0;
  topo.ka = 8;
  topo.ke = 8;
  topo.commit_capacity = 32;
  SpiderSystem sys(world, topo);

  std::vector<std::unique_ptr<SpiderClient>> clients;
  clients.push_back(sys.make_client(Site{Region::Virginia, 0}));
  clients.push_back(sys.make_client(Site{Region::Tokyo, 0}));
  clients.push_back(sys.make_client(Site{Region::Tokyo, 1}));

  SpiderRun run;
  const int kWritesPerClient = 6;
  std::size_t done = 0;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (int k = 0; k < kWritesPerClient; ++k) {
      std::string key = "c" + std::to_string(c) + "-k" + std::to_string(k);
      std::string val = "v" + std::to_string(c * 100 + k);
      std::size_t slot = run.write_ok.size();
      run.write_ok.push_back(false);
      clients[c]->write(kv_put(key, to_bytes(val)), [&run, slot, &done](Bytes reply, Duration) {
        run.write_ok[slot] = kv_decode_reply(reply).ok;
        ++done;
      });
    }
  }
  Time deadline = world.now() + 120 * kSecond;
  while (done < clients.size() * kWritesPerClient && world.now() < deadline) {
    world.queue().run_next();
  }
  world.run_for(5 * kSecond);  // let trailing groups finish

  run.app_snapshot = sys.exec(1, 0).app().snapshot();
  run.all_replicas_agree = true;
  for (GroupId g : sys.group_ids()) {
    for (std::size_t i = 0; i < sys.group_size(g); ++i) {
      if (!(sys.exec(g, i).app().snapshot() == run.app_snapshot)) {
        run.all_replicas_agree = false;
      }
    }
  }
  return run;
}

TEST(Batching, BatchedAndUnbatchedSpiderConverge) {
  SpiderRun unbatched = run_spider_workload(1);
  SpiderRun batched = run_spider_workload(16);

  for (bool ok : unbatched.write_ok) EXPECT_TRUE(ok);
  for (bool ok : batched.write_ok) EXPECT_TRUE(ok);
  EXPECT_TRUE(unbatched.all_replicas_agree);
  EXPECT_TRUE(batched.all_replicas_agree);
  // Same writes, same final application state, batched or not.
  EXPECT_EQ(batched.app_snapshot, unbatched.app_snapshot);
}

}  // namespace
}  // namespace spider
