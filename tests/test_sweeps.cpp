// Parameterized property sweeps across protocol configurations:
//   - PBFT with n = 4/7/10 (f = 1/2/3), crash-fault subsets
//   - IRMC grid over (implementation x group sizes x capacity)
//   - full Spider over (fa, fe, IRMC kind, z)
// Each instance checks the same invariants (safety, validity, liveness),
// so every grid point is a distinct behaviour check rather than a copy.
#include <gtest/gtest.h>

#include "consensus/pbft_replica.hpp"
#include "irmc/irmc.hpp"
#include "shard/sharded_system.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

namespace spider {
namespace {

// ------------------------------------------------------------ PBFT sweep

struct PbftParam {
  std::uint32_t f;
  std::uint32_t crashes;  // how many followers to crash (<= f)
  std::uint64_t max_batch;
  std::string label() const {
    return "f" + std::to_string(f) + "_crash" + std::to_string(crashes) + "_mb" +
           std::to_string(max_batch);
  }
};

class PbftSweep : public ::testing::TestWithParam<PbftParam> {};

TEST_P(PbftSweep, TotalOrderWithCrashFaults) {
  const PbftParam param = GetParam();
  const std::uint32_t n = 3 * param.f + 1;
  World world(1000 + param.f * 10 + param.crashes);

  struct Host : ComponentHost {
    using ComponentHost::ComponentHost;
    std::unique_ptr<PbftReplica> replica;
    std::vector<std::pair<SeqNr, Bytes>> delivered;
  };
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    hosts.push_back(std::make_unique<Host>(world, world.allocate_id(),
                                           Site{Region::Virginia, static_cast<std::uint8_t>(i % 4)}));
    ids.push_back(hosts.back()->id());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    PbftConfig cfg;
    cfg.replicas = ids;
    cfg.my_index = i;
    cfg.f = param.f;
    cfg.max_batch = param.max_batch;
    cfg.batch_delay = param.max_batch > 1 ? 5 * kMillisecond : 0;
    cfg.request_timeout = kSecond;
    cfg.view_change_timeout = 2 * kSecond;
    Host* h = hosts[i].get();
    h->replica = std::make_unique<PbftReplica>(*h, cfg, [h](SeqNr s, BytesView m) {
      h->delivered.emplace_back(s, to_bytes(m));
    });
  }
  // Crash the last `crashes` followers (never the view-0 primary).
  for (std::uint32_t c = 0; c < param.crashes; ++c) {
    world.net().set_node_down(hosts[n - 1 - c]->id(), true);
  }

  const int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    Bytes m = std::move(w).take();
    for (auto& h : hosts) h->replica->order(m);
  }
  world.run_for(10 * kSecond);

  // All live replicas agree on an identical gap-free order (A-Safety/A-Order).
  const auto& reference = hosts[0]->delivered;
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(kRequests));
  for (std::uint32_t i = 0; i < n - param.crashes; ++i) {
    EXPECT_EQ(hosts[i]->delivered, reference) << "replica " << i;
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].first, i + 1);
  }
}

std::vector<PbftParam> pbft_grid() {
  // Full cross product: every fault configuration also runs batched, so
  // each invariant holds at max_batch 1 (legacy path), 4, and 16.
  std::vector<PbftParam> grid;
  for (const auto& [f, crashes] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1, 0}, {1, 1}, {2, 0}, {2, 2}, {3, 0}, {3, 3}}) {
    for (std::uint64_t mb : {1, 4, 16}) grid.push_back(PbftParam{f, crashes, mb});
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, PbftSweep, ::testing::ValuesIn(pbft_grid()),
                         [](const ::testing::TestParamInfo<PbftParam>& info) {
                           return info.param.label();
                         });

// ------------------------------------------------------------ IRMC sweep

struct IrmcParam {
  IrmcKind kind;
  std::uint32_t ns, nr, fs, fr;
  Position capacity;
  std::string label() const {
    return std::string(kind == IrmcKind::ReceiverCollect ? "RC" : "SC") + "_s" +
           std::to_string(ns) + "r" + std::to_string(nr) + "_cap" + std::to_string(capacity);
  }
};

class IrmcSweep : public ::testing::TestWithParam<IrmcParam> {};

TEST_P(IrmcSweep, QuorumDeliveryAndFlowControlInvariants) {
  const IrmcParam p = GetParam();
  World world(500 + p.ns * 10 + p.capacity);
  IrmcConfig cfg;
  std::vector<std::unique_ptr<ComponentHost>> shosts, rhosts;
  for (std::uint32_t i = 0; i < p.ns; ++i) {
    shosts.push_back(std::make_unique<ComponentHost>(world, world.allocate_id(),
                                                     Site{Region::Ireland, static_cast<std::uint8_t>(i % 3)}));
    cfg.senders.push_back(shosts.back()->id());
  }
  for (std::uint32_t i = 0; i < p.nr; ++i) {
    rhosts.push_back(std::make_unique<ComponentHost>(world, world.allocate_id(),
                                                     Site{Region::Oregon, static_cast<std::uint8_t>(i % 3)}));
    cfg.receivers.push_back(rhosts.back()->id());
  }
  cfg.fs = p.fs;
  cfg.fr = p.fr;
  cfg.capacity = p.capacity;
  cfg.channel_tag = tags::kIrmc | 9;

  std::vector<std::unique_ptr<IrmcSenderEndpoint>> tx;
  std::vector<std::unique_ptr<IrmcReceiverEndpoint>> rx;
  for (auto& h : shosts) tx.push_back(make_irmc_sender(p.kind, *h, cfg));
  for (auto& h : rhosts) rx.push_back(make_irmc_receiver(p.kind, *h, cfg));

  // Send 2*capacity messages; consume in order, moving the receiver window.
  const Position total = 2 * p.capacity;
  for (Position pos = 1; pos <= total; ++pos) {
    Writer w;
    w.u64(pos);
    Bytes m = std::move(w).take();
    for (auto& t : tx) t->send(3, pos, m, {});
  }

  std::vector<Position> got;
  std::function<void(Position)> consume = [&](Position pos) {
    if (pos > total) return;
    rx[0]->receive(3, pos, [&, pos](RecvResult res) {
      ASSERT_FALSE(res.too_old);
      Reader r(res.message);
      got.push_back(r.u64());
      // fr+1 receivers must permit the move for the sender window to shift.
      for (std::uint32_t i = 0; i <= p.fr && i < p.nr; ++i) {
        rx[i]->move_window(3, pos + 1);
      }
      consume(pos + 1);
    });
  };
  consume(1);
  world.run_for(20 * kSecond);

  // FIFO, gap-free, complete (Liveness I + II under window recycling).
  ASSERT_EQ(got.size(), static_cast<std::size_t>(total));
  for (Position i = 0; i < total; ++i) EXPECT_EQ(got[i], i + 1);
  // The sender window followed the fr+1 receiver moves.
  EXPECT_GE(tx[0]->window_start(3), total - p.capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IrmcSweep,
    ::testing::Values(IrmcParam{IrmcKind::ReceiverCollect, 3, 3, 1, 1, 2},
                      IrmcParam{IrmcKind::ReceiverCollect, 4, 3, 1, 1, 8},
                      IrmcParam{IrmcKind::ReceiverCollect, 5, 5, 2, 2, 4},
                      IrmcParam{IrmcKind::ReceiverCollect, 7, 5, 2, 2, 16},
                      IrmcParam{IrmcKind::SenderCollect, 3, 3, 1, 1, 2},
                      IrmcParam{IrmcKind::SenderCollect, 4, 3, 1, 1, 8},
                      IrmcParam{IrmcKind::SenderCollect, 5, 5, 2, 2, 4},
                      IrmcParam{IrmcKind::SenderCollect, 7, 5, 2, 2, 16}),
    [](const ::testing::TestParamInfo<IrmcParam>& info) { return info.param.label(); });

// ------------------------------------------------------------ Spider sweep

struct SpiderParam {
  std::uint32_t fa, fe;
  IrmcKind kind;
  std::uint64_t max_batch;
  std::string label() const {
    return "fa" + std::to_string(fa) + "_fe" + std::to_string(fe) +
           (kind == IrmcKind::ReceiverCollect ? "_RC" : "_SC") + "_mb" +
           std::to_string(max_batch);
  }
};

class SpiderSweep : public ::testing::TestWithParam<SpiderParam> {};

TEST_P(SpiderSweep, EndToEndWriteReadAcrossConfigurations) {
  const SpiderParam p = GetParam();
  World world(2000 + p.fa * 10 + p.fe + p.max_batch * 100);
  SpiderTopology topo;
  topo.fa = p.fa;
  topo.fe = p.fe;
  topo.irmc_kind = p.kind;
  topo.exec_regions = {Region::Virginia, Region::Tokyo};
  topo.ka = 8;
  topo.ke = 8;
  topo.commit_capacity = 16;
  topo.max_batch = p.max_batch;
  topo.batch_delay = p.max_batch > 1 ? 5 * kMillisecond : 0;
  SpiderSystem sys(world, topo);

  auto client = sys.make_client(Site{Region::Tokyo, 0});
  // Group sizes follow fa/fe.
  EXPECT_EQ(sys.agreement_size(), 3 * p.fa + 1);
  EXPECT_EQ(client->group().members.size(), 2 * p.fe + 1);

  // Several clients write concurrently so batched configurations actually
  // form multi-request batches (each client keeps one ordered op in
  // flight); every write must succeed.
  std::vector<std::unique_ptr<SpiderClient>> extra;
  extra.push_back(sys.make_client(Site{Region::Virginia, 0}));
  extra.push_back(sys.make_client(Site{Region::Virginia, 1}));
  extra.push_back(sys.make_client(Site{Region::Tokyo, 1}));
  std::size_t oks = 0;
  std::size_t done = 0;
  auto tally = [&](Bytes reply, Duration) {
    if (kv_decode_reply(reply).ok) ++oks;
    ++done;
  };
  const std::size_t kConcurrent = extra.size() + 1;
  bool ok = false;
  Duration lat = -1;
  client->write(kv_put("k", to_bytes(std::string("v"))), [&](Bytes reply, Duration l) {
    ok = kv_decode_reply(reply).ok;
    lat = l;
    tally(std::move(reply), l);
  });
  for (std::size_t c = 0; c < extra.size(); ++c) {
    extra[c]->write(kv_put("x" + std::to_string(c), to_bytes(std::string("v"))), tally);
  }
  Time deadline = world.now() + 30 * kSecond;
  while (done < kConcurrent && world.now() < deadline) world.queue().run_next();
  ASSERT_TRUE(ok);
  EXPECT_EQ(oks, kConcurrent);

  // Crash fe execution replicas + fa agreement replicas: still live.
  GroupId g = client->group().group;
  for (std::uint32_t i = 0; i < p.fe; ++i) {
    world.net().set_node_down(sys.exec(g, i).id(), true);
  }
  for (std::uint32_t i = 0; i < p.fa; ++i) {
    world.net().set_node_down(sys.agreement(3 * p.fa - i).id(), true);  // followers
  }
  ok = false;
  lat = -1;
  client->write(kv_put("k2", to_bytes(std::string("v2"))), [&](Bytes reply, Duration l) {
    ok = kv_decode_reply(reply).ok;
    lat = l;
  });
  deadline = world.now() + 30 * kSecond;
  while (lat < 0 && world.now() < deadline) world.queue().run_next();
  EXPECT_TRUE(ok) << "write must survive fa+fe crash faults";
}

std::vector<SpiderParam> spider_grid() {
  std::vector<SpiderParam> grid;
  for (const auto& base : std::vector<SpiderParam>{{1, 1, IrmcKind::ReceiverCollect, 0},
                                                   {1, 2, IrmcKind::ReceiverCollect, 0},
                                                   {2, 1, IrmcKind::ReceiverCollect, 0},
                                                   {2, 2, IrmcKind::ReceiverCollect, 0},
                                                   {1, 1, IrmcKind::SenderCollect, 0},
                                                   {2, 2, IrmcKind::SenderCollect, 0}}) {
    for (std::uint64_t mb : {1, 4, 16}) {
      grid.push_back(SpiderParam{base.fa, base.fe, base.kind, mb});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpiderSweep, ::testing::ValuesIn(spider_grid()),
    [](const ::testing::TestParamInfo<SpiderParam>& info) { return info.param.label(); });

// ------------------------------------------------------ Sharded Spider sweep

struct ShardedParam {
  std::uint32_t shards;
  std::uint64_t max_batch;
  std::string label() const {
    return "shards" + std::to_string(shards) + "_mb" + std::to_string(max_batch);
  }
};

class ShardedSweep : public ::testing::TestWithParam<ShardedParam> {};

TEST_P(ShardedSweep, EveryShardConvergesUnderCrossShardLoad) {
  const ShardedParam p = GetParam();
  World world(3000 + p.shards * 10 + p.max_batch);
  ShardedTopology topo;
  topo.shards = p.shards;
  topo.base.exec_regions = {Region::Virginia, Region::Tokyo};
  topo.base.ka = 8;
  topo.base.ke = 8;
  topo.base.commit_capacity = 16;
  topo.base.max_batch = p.max_batch;
  topo.base.batch_delay = p.max_batch > 1 ? 5 * kMillisecond : 0;
  ShardedSpiderSystem sys(world, topo);

  // Routed clients in two regions write keys that hash across every shard.
  std::vector<std::unique_ptr<ShardedClient>> clients;
  clients.push_back(sys.make_client(Site{Region::Virginia, 0}));
  clients.push_back(sys.make_client(Site{Region::Tokyo, 0}));
  clients.push_back(sys.make_client(Site{Region::Virginia, 1}));

  const int kWritesPerClient = 4;
  std::vector<std::string> all_keys;
  std::size_t want = clients.size() * kWritesPerClient;
  std::size_t done = 0, oks = 0;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (int i = 0; i < kWritesPerClient; ++i) {
      std::string key = "sw-c" + std::to_string(c) + "-k" + std::to_string(i);
      all_keys.push_back(key);
      clients[c]->put(key, to_bytes(std::string("v")), [&](Bytes reply, Duration) {
        if (kv_decode_reply(reply).ok) ++oks;
        ++done;
      });
    }
  }
  Time deadline = world.now() + 60 * kSecond;
  while (done < want && world.now() < deadline) world.queue().run_next();
  ASSERT_EQ(done, want) << "not every client got a reply";
  EXPECT_EQ(oks, want);

  // A cross-shard MGET observes every write, with a per-key shard seq.
  bool mget_done = false;
  clients[0]->mget(all_keys, [&](std::vector<ShardedClient::MgetEntry> entries, Duration) {
    mget_done = true;
    ASSERT_EQ(entries.size(), all_keys.size());
    for (const auto& e : entries) {
      EXPECT_TRUE(e.ok) << e.key;
      EXPECT_GE(e.shard_seq, 1u) << e.key;
      EXPECT_LT(e.shard, p.shards) << e.key;
    }
  });
  deadline = world.now() + 60 * kSecond;
  while (!mget_done && world.now() < deadline) world.queue().run_next();
  ASSERT_TRUE(mget_done);

  // Convergence per shard: after the commit channels drain, every execution
  // replica of a shard holds an identical application state (writes execute
  // at every group; reads never diverge it).
  world.run_for(5 * kSecond);
  for (std::uint32_t s = 0; s < p.shards; ++s) {
    SpiderSystem& core = sys.core(s);
    Bytes reference;
    bool first = true;
    for (GroupId g : core.group_ids()) {
      for (std::size_t i = 0; i < core.group_size(g); ++i) {
        Bytes snap = core.exec(g, i).app().snapshot();
        if (first) {
          reference = std::move(snap);
          first = false;
        } else {
          EXPECT_EQ(snap, reference) << "shard " << s << " group " << g << " replica " << i;
        }
      }
    }
  }
}

std::vector<ShardedParam> sharded_grid() {
  std::vector<ShardedParam> grid;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    for (std::uint64_t mb : {1, 4}) grid.push_back(ShardedParam{shards, mb});
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardedSweep, ::testing::ValuesIn(sharded_grid()),
    [](const ::testing::TestParamInfo<ShardedParam>& info) { return info.param.label(); });

}  // namespace
}  // namespace spider
