// Deterministic-parallelism suite.
//
// The contract under test: enabling the parallel runtime — worker threads
// plus the crypto verification prefetch — must not change a single
// observable byte of any run. The thread-ladder goldens below re-run the
// exact pre-optimisation chaos scenarios (the SHA-256 pins from
// test_chaos.cpp's FastPathMatchesPreOptimizationGoldens, captured from the
// naive sequential implementation) at 1, 2, 4 and 8 threads: every fault
// schedule and recorded history must still hash to the same goldens.
//
// The unit tests pin the mechanisms that equivalence rests on: the
// VerifyPool claim protocol (exactly-once execution, work-stealing joins),
// the provider hooks' bit-equivalence with the inline crypto calls, and the
// prefetch table's dedup / single-consumer / eviction behaviour — all of
// which are main-thread-deterministic state, identical at every thread
// count.
//
// This binary is also the ThreadSanitizer target: the CI tsan job rebuilds
// it with -fsanitize=thread and runs it to prove the claim protocol is
// data-race-free, not just observed-race-free.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"
#include "common/serde.hpp"
#include "crypto/hmac.hpp"
#include "crypto/provider.hpp"
#include "crypto/sha256.hpp"
#include "runtime/parallel.hpp"
#include "runtime/verify_pool.hpp"
#include "sim/component.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/chaos_runner.hpp"
#include "tests/support/drive.hpp"

namespace spider {
namespace {

using runtime::ParallelRuntime;
using runtime::VerifyPool;

// ---------------------------------------------------------------------------
// Thread-ladder goldens: the PR 5 pins, byte-identical at every thread count.
// ---------------------------------------------------------------------------

struct Golden {
  ChaosConfig config;
  std::uint64_t seed;
  bool byzantine;
  const char* script_sha;
  const char* history_sha;
};

// Same pins as ChaosDeterminism.FastPathMatchesPreOptimizationGoldens:
// captured from the naive-copy single-threaded implementation.
constexpr Golden kGoldens[] = {
    {ChaosConfig::SpiderF1, 7, false,
     "a17347e98364e2e8e56a1ccb559aaaf3519aff5e27c519d9a0be4724cb84d4a2",
     "81479ff0304795bc452e7fa52b0d246bafaa4856bce77236f6b43ec175a09dbe"},
    {ChaosConfig::SpiderF2, 3, false,
     "a86fc42376d861975983dc6f3b77c871ad1b7e707367c4f678bf51e188116c89",
     "4e2150d0fcdce76bb449ceb4ab9626312645b7b7c2752c823ac7d70da298fe3c"},
    {ChaosConfig::PbftBaseline, 11, false,
     "c54a204ddcd512967101bf9171a1dc1c8cc7c83df9a34a868bd020c950c92a83",
     "696c6044c47e2164220503d5559b943945e3a35afdba35b46946d87a42623ed4"},
    {ChaosConfig::Sharded2, 5, false,
     "76c314389a3059f239a69f3117cbb48aa4fa3c0b1d0d6fae862837548c44a2d9",
     "25b6f0e81bd18c87e2726bcebf11870bef0139ae6cd8beed8e6a915bf2769a4b"},
    {ChaosConfig::SpiderF1, 103, true,
     "10a18b944bd6c01b8cf9df18ab86b5ac13b207f637a55f3ab83ec8f4933239b8",
     "a8dfef510d5b96e2d4afedfa439a7f49ab386347074f0cada46ce08acb4c50bc"},
    {ChaosConfig::Sharded2, 107, true,
     "6ff10948605e10c9fef061ad57925c8bf22f30aabce5a53ff676b9b7c5c0b07f",
     "16433f29f2d246e7978507b1dbebd8094c1b5f884e07c2abf0f5d1671f94b97b"},
};

class ThreadLadder : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadLadder, GoldensAreByteIdentical) {
  const unsigned threads = GetParam();
  for (const Golden& g : kGoldens) {
    ChaosOutcome out =
        run_chaos(g.config, g.seed, g.byzantine, /*replay_script=*/nullptr, threads);
    EXPECT_EQ(to_hex(sha256(to_bytes(out.machine_script))), g.script_sha)
        << "fault script diverged from the single-threaded goldens at "
        << config_name(g.config) << " seed " << g.seed << " threads " << threads;
    EXPECT_EQ(to_hex(sha256(out.history)), g.history_sha)
        << "recorded history diverged from the single-threaded goldens at "
        << config_name(g.config) << " seed " << g.seed << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Parallel, ThreadLadder, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& i) {
                           return "threads" + std::to_string(i.param);
                         });

// ---------------------------------------------------------------------------
// Prefetch counters are themselves deterministic: submission, consumption
// and eviction all happen on the simulation thread in event order, so the
// counts are part of the reproducible surface — at every thread count.
// ---------------------------------------------------------------------------

struct SmallRunStats {
  std::uint64_t submitted;
  std::uint64_t hits;
  std::string history_sha;
};

SmallRunStats small_spider_run(unsigned threads) {
  World world(4711);
  ParallelRuntime& rt = world.enable_parallelism(threads);
  SpiderTopology topo;
  topo.exec_regions = {Region::Virginia, Region::Tokyo};
  topo.ka = 8;
  topo.ke = 8;
  topo.ag_win = 32;
  topo.commit_capacity = 16;
  topo.client_retry = kSecond;
  SpiderSystem sys(world, topo);
  HistoryRecorder hist(world);
  auto client = sys.make_client(Site{Region::Virginia, 0});
  for (int i = 0; i < 4; ++i) {
    recorded_put(hist, *client, 0, "k" + std::to_string(i % 2), "v" + std::to_string(i));
    drive::run_until(world, [&] { return hist.pending_count() == 0; }, 30 * kSecond);
  }
  recorded_strong_get(hist, *client, 0, "k0");
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 30 * kSecond);
  SmallRunStats s;
  s.submitted = rt.prefetch_submitted();
  s.hits = rt.prefetch_hits();
  s.history_sha = to_hex(sha256(hist.serialize()));
  return s;
}

TEST(ParallelDeterminism, PrefetchCountersIdenticalAcrossThreadCounts) {
  SmallRunStats t1 = small_spider_run(1);
  ASSERT_GT(t1.submitted, 0u) << "prefetch never engaged — wiring broken";
  ASSERT_GT(t1.hits, 0u);
  for (unsigned threads : {2u, 4u}) {
    SmallRunStats tn = small_spider_run(threads);
    EXPECT_EQ(tn.submitted, t1.submitted) << "threads=" << threads;
    EXPECT_EQ(tn.hits, t1.hits) << "threads=" << threads;
    EXPECT_EQ(tn.history_sha, t1.history_sha) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// VerifyPool: claim protocol and accounting.
// ---------------------------------------------------------------------------

TEST(VerifyPoolTest, InlineModeComputesAtSubmit) {
  VerifyPool pool(0);
  auto job = pool.submit([](VerifyPool::Job& j) {
    j.ok = true;
    j.out = {1, 2, 3};
  });
  // Inline mode ran the closure inside submit(); join is a no-op check.
  pool.join(job);
  EXPECT_TRUE(job->ok);
  EXPECT_EQ(job->out, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(pool.submitted(), 1u);
  EXPECT_EQ(pool.ran_inline(), 1u);
  EXPECT_EQ(pool.ran_on_worker(), 0u);
}

TEST(VerifyPoolTest, EveryJobRunsExactlyOnceAcrossWorkersAndSteals) {
  constexpr int kJobs = 512;
  VerifyPool pool(2);
  std::vector<VerifyPool::JobRef> jobs;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(pool.submit(
        [i](VerifyPool::Job& j) {
          j.ok = (i % 3 == 0);
          j.out = {static_cast<std::uint8_t>(i & 0xff), static_cast<std::uint8_t>(i >> 8)};
        },
        static_cast<std::uint32_t>(i)));
  }
  // Join immediately (the common pattern): some jobs are stolen inline,
  // some ran on workers — the results must be identical either way.
  for (int i = 0; i < kJobs; ++i) {
    pool.join(jobs[i]);
    EXPECT_EQ(jobs[i]->ok, i % 3 == 0) << i;
    ASSERT_EQ(jobs[i]->out.size(), 2u) << i;
    EXPECT_EQ(jobs[i]->out[0], static_cast<std::uint8_t>(i & 0xff)) << i;
    EXPECT_EQ(jobs[i]->out[1], static_cast<std::uint8_t>(i >> 8)) << i;
  }
  // Exactly-once: the two run paths partition the submitted set.
  EXPECT_EQ(pool.submitted(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(pool.ran_on_worker() + pool.ran_inline(), static_cast<std::uint64_t>(kJobs));
}

TEST(VerifyPoolTest, DoubleJoinIsIdempotent) {
  VerifyPool pool(1);
  auto job = pool.submit([](VerifyPool::Job& j) { j.ok = true; });
  pool.join(job);
  pool.join(job);  // second join: single acquire load, no re-run
  EXPECT_TRUE(job->ok);
  EXPECT_EQ(pool.ran_on_worker() + pool.ran_inline(), 1u);
}

// ---------------------------------------------------------------------------
// Provider hooks: bit-equivalence with the inline calls, both providers.
// ---------------------------------------------------------------------------

template <class Provider>
void check_sig_verifier_equivalence() {
  Provider cp(99);
  const Bytes msg = to_bytes("the quick brown fox");
  Bytes sig = cp.sign(7, msg);

  auto good = cp.make_sig_verifier(7, msg, sig);
  ASSERT_TRUE(static_cast<bool>(good));
  EXPECT_TRUE(good());
  EXPECT_EQ(good(), cp.verify(7, msg, sig));

  Bytes bad_sig = sig;
  bad_sig[bad_sig.size() / 2] ^= 0x40;
  auto bad = cp.make_sig_verifier(7, msg, bad_sig);
  ASSERT_TRUE(static_cast<bool>(bad));
  EXPECT_FALSE(bad());
  EXPECT_EQ(bad(), cp.verify(7, msg, bad_sig));

  // Wrong signer: closure captures the claimed signer's key, like verify().
  auto wrong = cp.make_sig_verifier(8, msg, sig);
  ASSERT_TRUE(static_cast<bool>(wrong));
  EXPECT_EQ(wrong(), cp.verify(8, msg, sig));
  EXPECT_FALSE(wrong());
}

TEST(ProviderHooks, FastCryptoSigVerifierMatchesVerify) {
  check_sig_verifier_equivalence<FastCrypto>();
}

TEST(ProviderHooks, RealCryptoSigVerifierMatchesVerify) {
  check_sig_verifier_equivalence<RealCrypto>();
}

template <class Provider>
void check_mac_schedule_equivalence() {
  Provider cp(123);
  const Bytes msg = to_bytes("macs must match bit for bit");
  const HmacKey* ks = cp.mac_schedule(3, 9);
  ASSERT_NE(ks, nullptr);
  EXPECT_EQ(hmac_tag(*ks, msg), cp.mac(3, 9, msg));
  EXPECT_TRUE(cp.verify_mac(3, 9, msg, hmac_tag(*ks, msg)));
}

TEST(ProviderHooks, FastCryptoMacScheduleMatchesMac) {
  check_mac_schedule_equivalence<FastCrypto>();
}

TEST(ProviderHooks, RealCryptoMacScheduleMatchesMac) {
  check_mac_schedule_equivalence<RealCrypto>();
}

// ---------------------------------------------------------------------------
// Prefetch table mechanics, driven directly through the runtime hooks.
// ---------------------------------------------------------------------------

/// Builds a client-namespace frame [u32 kClient][body][16B MAC from->to].
Payload client_mac_frame(World& world, NodeId from, NodeId to, const std::string& body) {
  Writer w;
  w.u32(tags::kClient);
  w.raw(to_bytes(body));
  Bytes prefix = std::move(w).take();
  Bytes mac = world.crypto().mac(from, to, prefix);
  Writer f(prefix.size() + mac.size());
  f.raw(prefix);
  f.raw(mac);
  return Payload(std::move(f).take());
}

/// Builds an IRMC-namespace signed frame [u32 tag][type=Send][body][sig].
Payload irmc_signed_frame(World& world, NodeId from, const std::string& body) {
  Writer w;
  w.u32(tags::kIrmc | 5u);
  w.u8(1);  // irmc::MsgType::Send — signature-verified per the trailer rule
  w.raw(to_bytes(body));
  Bytes prefix = std::move(w).take();
  Bytes sig = world.crypto().sign(from, prefix);
  Writer f(prefix.size() + sig.size());
  f.raw(prefix);
  f.raw(sig);
  return Payload(std::move(f).take());
}

TEST(PrefetchTable, MulticastSignatureSubmittedOnceConsumedPerRecipient) {
  World world(11);
  ParallelRuntime& rt = world.enable_parallelism(1);
  Payload frame = irmc_signed_frame(world, 42, "payload shared by the fan-out");
  const std::size_t msg_len = frame.size() - world.crypto().signature_size();

  rt.note_send(42, 1, frame);
  rt.note_send(42, 2, frame);
  rt.note_send(42, 3, frame);
  // One shared buffer, one signature, ONE job — the algorithmic win that
  // holds even at threads=1.
  EXPECT_EQ(rt.prefetch_submitted(), 1u);
  EXPECT_EQ(rt.table_size(), 1u);

  for (NodeId to : {1u, 2u, 3u}) {
    auto verdict = rt.take_verdict(frame.data(), msg_len, 42, to, /*is_sig=*/true);
    ASSERT_TRUE(verdict.has_value()) << "recipient " << to;
    EXPECT_TRUE(*verdict);
  }
  EXPECT_EQ(rt.prefetch_hits(), 3u);
  // Signature entries persist for late recipients; only the FIFO cap
  // retires them.
  EXPECT_EQ(rt.table_size(), 1u);
}

TEST(PrefetchTable, BadSignatureYieldsFalseVerdict) {
  World world(12);
  ParallelRuntime& rt = world.enable_parallelism(1);
  // Hand-build the frame with one corrupted signature byte.
  Writer w;
  w.u32(tags::kIrmc | 5u);
  w.u8(1);  // irmc::MsgType::Send
  w.raw(to_bytes("to be corrupted"));
  Bytes prefix = std::move(w).take();
  Bytes sig = world.crypto().sign(42, prefix);
  sig.back() ^= 0x01;
  Writer f(prefix.size() + sig.size());
  f.raw(prefix);
  f.raw(sig);
  Payload frame(std::move(f).take());
  const std::size_t msg_len = frame.size() - world.crypto().signature_size();

  rt.note_send(42, 1, frame);
  auto verdict = rt.take_verdict(frame.data(), msg_len, 42, 1, /*is_sig=*/true);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
}

TEST(PrefetchTable, MacEntriesArePerRecipientAndSingleConsumer) {
  World world(13);
  ParallelRuntime& rt = world.enable_parallelism(1);
  Payload frame = client_mac_frame(world, 7, 8, "request body");
  const std::size_t msg_len = frame.size() - world.crypto().mac_size();

  rt.note_send(7, 8, frame);
  rt.note_send(7, 9, frame);  // distinct pair key → its own (failing) job
  EXPECT_EQ(rt.prefetch_submitted(), 2u);

  auto v8 = rt.take_verdict(frame.data(), msg_len, 7, 8, /*is_sig=*/false);
  ASSERT_TRUE(v8.has_value());
  EXPECT_TRUE(*v8);
  // Single-consumer: the entry was erased on take.
  EXPECT_FALSE(rt.take_verdict(frame.data(), msg_len, 7, 8, false).has_value());

  // The (7,9) MAC was computed for pair (7,8): genuinely invalid, and the
  // prefetched verdict says so — same answer verify_mac would give.
  auto v9 = rt.take_verdict(frame.data(), msg_len, 7, 9, /*is_sig=*/false);
  ASSERT_TRUE(v9.has_value());
  EXPECT_FALSE(*v9);
  EXPECT_EQ(rt.table_size(), 0u);
}

TEST(PrefetchTable, RetransmitOfLiveEntryIsDeduplicated) {
  World world(14);
  ParallelRuntime& rt = world.enable_parallelism(1);
  Payload frame = client_mac_frame(world, 7, 8, "retransmitted");
  rt.note_send(7, 8, frame);
  rt.note_send(7, 8, frame);  // same buffer, same pair: no second job
  EXPECT_EQ(rt.prefetch_submitted(), 1u);
}

TEST(PrefetchTable, FifoCapBoundsTableAndPayloadPins) {
  World world(15);
  ParallelRuntime& rt = world.enable_parallelism(1);
  // More distinct never-consumed frames than the cap (dropped messages in a
  // long partition, say). The table must not grow without bound.
  constexpr std::size_t kOver = (1u << 14) + 64;
  for (std::size_t i = 0; i < kOver; ++i) {
    Payload frame = client_mac_frame(world, 1, 2, "drop " + std::to_string(i));
    rt.note_send(1, 2, frame);
  }
  EXPECT_EQ(rt.prefetch_submitted(), static_cast<std::uint64_t>(kOver));
  EXPECT_LE(rt.table_size(), std::size_t{1} << 14);
}

// ---------------------------------------------------------------------------
// Batch helpers: scatter-join equals the inline loop.
// ---------------------------------------------------------------------------

TEST(BatchHelpers, VerifySigsMatchesInlineLoopWithAndWithoutRuntime) {
  const Bytes msg = to_bytes("batch of shares");
  for (unsigned threads : {0u, 1u, 4u}) {
    World world(21);
    if (threads > 0) world.enable_parallelism(threads);
    Bytes good = world.crypto().sign(5, msg);
    Bytes bad = good;
    bad[3] ^= 0xff;
    std::vector<runtime::SigCheck> checks = {
        {5, msg, good}, {5, msg, bad}, {6, msg, good}, {5, msg, good}};
    std::vector<char> verdicts = runtime::verify_sigs(world, checks);
    ASSERT_EQ(verdicts.size(), 4u);
    EXPECT_EQ(verdicts[0], 1) << "threads=" << threads;
    EXPECT_EQ(verdicts[1], 0) << "threads=" << threads;
    EXPECT_EQ(verdicts[2], 0) << "threads=" << threads;  // wrong signer
    EXPECT_EQ(verdicts[3], 1) << "threads=" << threads;
  }
}

TEST(BatchHelpers, ComputeMacsMatchesInlineLoopWithAndWithoutRuntime) {
  const Bytes msg = to_bytes("multicast body");
  const std::vector<NodeId> recipients = {2, 3, 4, 5};
  World ref(31);
  std::vector<Bytes> expect;
  for (NodeId to : recipients) expect.push_back(ref.crypto().mac(1, to, msg));

  for (unsigned threads : {0u, 1u, 4u}) {
    World world(31);  // same seed → same key material as the reference
    if (threads > 0) world.enable_parallelism(threads);
    std::vector<Bytes> macs = runtime::compute_macs(world, 1, msg, recipients);
    ASSERT_EQ(macs.size(), recipients.size());
    for (std::size_t i = 0; i < recipients.size(); ++i) {
      EXPECT_EQ(macs[i], expect[i]) << "threads=" << threads << " recipient " << recipients[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch driver: bounded virtual-time steps, still exact event order.
// ---------------------------------------------------------------------------

TEST(EpochDriver, BarriersAdvanceWithoutReorderingEvents) {
  World world(41);
  ParallelRuntime& rt = world.enable_parallelism(2, /*epoch_len=*/100);
  std::vector<int> order;
  world.queue().schedule_at(50, [&] { order.push_back(1); });
  world.queue().schedule_at(250, [&] { order.push_back(2); });
  world.queue().schedule_at(250, [&] { order.push_back(3); });  // FIFO at equal t
  world.queue().schedule_at(990, [&] { order.push_back(4); });
  world.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(world.now(), 1000u);
  // 1000us of virtual time at epoch_len=100 → ten barriers.
  EXPECT_EQ(rt.epochs(), 10u);
}

}  // namespace
}  // namespace spider
