// Chaos-test harness: recorded KV workloads over any client type.
//
// A workload is scheduled up front — every (client, op, key, value, time)
// tuple is drawn from a fork of the World RNG before the run starts — so a
// scenario is a pure function of its seed: same seed, same fault schedule,
// same workload, byte-identical recorded history.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "check/kv_recorder.hpp"
#include "tests/support/drive.hpp"

namespace spider::chaos {

/// Type-erased recording client: lets one workload driver serve
/// SpiderClient (Spider + baselines) and ShardedClient alike.
struct ClientHandle {
  std::function<void(const std::string& key, const std::string& value)> put;
  std::function<void(const std::string& key)> strong_get;
  std::function<void(const std::string& key)> weak_get;

  template <class Client>
  static ClientHandle wrap(HistoryRecorder& hist, Client& c, std::uint64_t client_id) {
    ClientHandle h;
    h.put = [&hist, &c, client_id](const std::string& key, const std::string& value) {
      recorded_put(hist, c, client_id, key, value);
    };
    h.strong_get = [&hist, &c, client_id](const std::string& key) {
      recorded_strong_get(hist, c, client_id, key);
    };
    h.weak_get = [&hist, &c, client_id](const std::string& key) {
      recorded_weak_get(hist, c, client_id, key);
    };
    return h;
  }

  /// ShardedClient variant: ops go through the *_routed entry points so the
  /// serving shard is attributed in the recorded history.
  template <class Client>
  static ClientHandle wrap_routed(HistoryRecorder& hist, Client& c,
                                  std::uint64_t client_id) {
    ClientHandle h;
    h.put = [&hist, &c, client_id](const std::string& key, const std::string& value) {
      recorded_put_routed(hist, c, client_id, key, value);
    };
    h.strong_get = [&hist, &c, client_id](const std::string& key) {
      recorded_strong_get_routed(hist, c, client_id, key);
    };
    h.weak_get = [&hist, &c, client_id](const std::string& key) {
      recorded_weak_get_routed(hist, c, client_id, key);
    };
    return h;
  }
};

struct WorkloadOptions {
  std::size_t ops_per_client = 12;
  Duration mean_gap = 700 * kMillisecond;  // think time between submissions
  Time start = 200 * kMillisecond;
  // Mix: puts get unique values "c<client>-<n>" so the linearizability
  // witness is unambiguous.
  std::uint32_t put_pct = 50;
  std::uint32_t strong_get_pct = 25;  // remainder: weak gets
};

/// Pre-schedules the whole workload on the event queue. `clients` and the
/// recorder behind the handles must outlive the run.
inline void schedule_workload(World& world, std::vector<ClientHandle> clients,
                              const std::vector<std::string>& keys,
                              const WorkloadOptions& opt) {
  Rng rng = world.rng().fork();
  auto shared_clients =
      std::make_shared<std::vector<ClientHandle>>(std::move(clients));
  for (std::size_t c = 0; c < shared_clients->size(); ++c) {
    Time at = world.now() + opt.start;
    for (std::size_t n = 0; n < opt.ops_per_client; ++n) {
      at += static_cast<Duration>(opt.mean_gap / 2 + rng.uniform(opt.mean_gap));
      std::uint32_t kind = static_cast<std::uint32_t>(rng.uniform(100));
      std::string key = keys[rng.uniform(keys.size())];  // resolved at schedule time
      std::string value = "c" + std::to_string(c) + "-" + std::to_string(n);
      world.queue().schedule_at(
          at, [shared_clients, c, kind, key = std::move(key), value = std::move(value),
               put_pct = opt.put_pct, sget_pct = opt.strong_get_pct] {
            const ClientHandle& h = (*shared_clients)[c];
            if (kind < put_pct) {
              h.put(key, value);
            } else if (kind < put_pct + sget_pct) {
              h.strong_get(key);
            } else {
              h.weak_get(key);
            }
          });
    }
  }
}

/// Default key pool: small enough that keys see real write contention,
/// large enough that per-key strong histories stay search-friendly.
inline std::vector<std::string> key_pool(std::size_t n = 6) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < n; ++i) keys.push_back("k" + std::to_string(i));
  return keys;
}

}  // namespace spider::chaos
