// Shared deadline-bounded drive loops for examples and tests.
//
// Replaces the hand-rolled `while (!done && now < deadline) run_next()`
// loops that used to be copy-pasted across examples and test fixtures —
// and fixes their two latent bugs: the old loops spun forever if the event
// queue drained with the predicate still false, and their callbacks
// captured stack locals that died when the helper timed out. Outcome
// state lives behind a shared_ptr here, so a late completion after a
// timeout writes into live memory.
#pragma once

#include <memory>
#include <string>

#include "app/kvstore.hpp"
#include "sim/world.hpp"

namespace spider::drive {

/// Runs the event loop until `pred()` holds, the deadline passes, or the
/// queue drains. Returns the final predicate value.
template <class Pred>
bool run_until(World& world, Pred&& pred, Duration timeout = 60 * kSecond) {
  const Time deadline = world.now() + timeout;
  while (!pred() && world.now() < deadline) {
    if (!world.queue().run_next()) break;  // queue drained: nothing will change
  }
  return pred();
}

struct KvOutcome {
  bool done = false;  // false: helper timed out before the reply quorum
  bool ok = false;
  Bytes value;
  Duration latency = 0;
};

namespace detail {
template <class Issue>
KvOutcome blocking_kv(World& world, Issue&& issue, Duration timeout) {
  auto out = std::make_shared<KvOutcome>();
  issue([out](Bytes reply, Duration lat) {
    KvReply r = kv_decode_reply(reply);
    out->done = true;
    out->ok = r.ok;
    out->value = std::move(r.value);
    out->latency = lat;
  });
  run_until(world, [&] { return out->done; }, timeout);
  return *out;
}
}  // namespace detail

/// Blocking KV helpers over any client exposing write/strong_read/weak_read
/// (SpiderClient, baseline clients, ShardedClient).
template <class Client>
KvOutcome blocking_write(World& world, Client& client, const std::string& key,
                         const std::string& value, Duration timeout = 60 * kSecond) {
  return detail::blocking_kv(
      world,
      [&](auto cb) { client.write(kv_put(key, to_bytes(value)), std::move(cb)); }, timeout);
}

template <class Client>
KvOutcome blocking_strong_read(World& world, Client& client, const std::string& key,
                               Duration timeout = 60 * kSecond) {
  return detail::blocking_kv(
      world, [&](auto cb) { client.strong_read(kv_get(key), std::move(cb)); }, timeout);
}

template <class Client>
KvOutcome blocking_weak_read(World& world, Client& client, const std::string& key,
                             Duration timeout = 60 * kSecond) {
  return detail::blocking_kv(
      world, [&](auto cb) { client.weak_read(kv_get(key), std::move(cb)); }, timeout);
}

}  // namespace spider::drive
