// Shared chaos-scenario runner: builds one of the four deployment shapes
// (Spider f=1, Spider f=2, geo-replicated PBFT baseline, 2-shard sharded),
// schedules a randomized (or replayed) FaultPlan plus a recorded client
// workload, and drives the run through chaos / recovery / verification
// phases. Extracted from test_chaos.cpp so the parallel-determinism suite
// can run the exact same scenarios with worker threads enabled and compare
// the resulting histories byte for byte.
#pragma once

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "baselines/bft_system.hpp"
#include "check/linearizer.hpp"
#include "obs/trace_export.hpp"
#include "shard/sharded_system.hpp"
#include "sim/fault_plan.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/chaos.hpp"
#include "tests/support/drive.hpp"

namespace spider {

enum class ChaosConfig : int { SpiderF1 = 0, SpiderF2 = 1, PbftBaseline = 2, Sharded2 = 3 };

inline const char* config_name(ChaosConfig c) {
  switch (c) {
    case ChaosConfig::SpiderF1: return "spider_f1";
    case ChaosConfig::SpiderF2: return "spider_f2";
    case ChaosConfig::PbftBaseline: return "pbft_baseline";
    case ChaosConfig::Sharded2: return "sharded_2";
  }
  return "?";
}

struct ChaosOutcome {
  bool completed = false;      // every op (incl. final reads) got a reply
  std::size_t pending = 0;
  std::size_t total_ops = 0;
  LinResult lin;
  bool no_lost_writes = true;
  std::string lost_diag;
  std::string fault_script;    // human-readable (FaultPlan::describe)
  std::string machine_script;  // replayable (FaultPlan::serialize_script)
  std::string history_dump;
  std::string history_text;    // replayable (HistoryRecorder::serialize_text)
  Bytes history;
  std::string flight_trace;    // Chrome-trace JSON of the final seconds
};

/// Flight-recorder window: every chaos run keeps a ring of recent trace
/// events, and failure artifacts ship this much tail as a Perfetto-loadable
/// JSON sibling — "what was the system doing right before it wedged".
inline constexpr Time kFlightWindow = 5 * kSecond;

/// Runs the common chaos phases once the config-specific setup produced
/// client handles, fault targets and partition groups.
struct ScenarioParts {
  std::vector<chaos::ClientHandle> handles;
  chaos::ClientHandle reader;  // used for the final per-key strong reads
  std::vector<NodeId> crash_targets;
  std::vector<std::vector<NodeId>> partition_groups;
  std::uint32_t max_concurrent_crashes = 1;
  std::size_t ops_per_client = 10;
  // Byzantine sweep: candidate sets per role and the ≤f hard caps.
  std::vector<std::vector<NodeId>> byz_consensus_groups;
  std::vector<std::vector<NodeId>> byz_exec_groups;
  std::uint32_t max_byz_consensus = 0;
  std::uint32_t max_byz_exec = 0;
  bool byzantine = false;
  // Replay mode: schedule this serialized script instead of randomize().
  const std::string* replay_script = nullptr;
};

inline ChaosOutcome drive_chaos(World& world, HistoryRecorder& hist, FaultPlan& plan,
                                ScenarioParts parts) {
  FaultPlan::ChaosProfile profile;
  profile.crash_targets = std::move(parts.crash_targets);
  profile.partition_groups = std::move(parts.partition_groups);
  profile.start = 2 * kSecond;
  profile.horizon = 18 * kSecond;
  profile.actions = 5;
  profile.max_concurrent_crashes = parts.max_concurrent_crashes;
  if (parts.byzantine) {
    profile.byz_consensus_groups = std::move(parts.byz_consensus_groups);
    profile.byz_exec_groups = std::move(parts.byz_exec_groups);
    profile.max_byz_per_consensus_group = parts.max_byz_consensus;
    profile.max_byz_per_exec_group = parts.max_byz_exec;
    profile.byz_actions = 4;
  }
  if (parts.replay_script != nullptr) {
    // Mirror randomize()'s single World-RNG fork so the workload schedule
    // drawn below stays bit-identical with the recorded run.
    (void)world.rng().fork();
    plan.schedule_script(*parts.replay_script);
  } else {
    plan.randomize(profile);
  }

  chaos::WorkloadOptions opt;
  opt.ops_per_client = parts.ops_per_client;
  opt.mean_gap = 900 * kMillisecond;
  std::vector<std::string> keys = chaos::key_pool(6);
  chaos::schedule_workload(world, parts.handles, keys, opt);

  ChaosOutcome out;
  out.fault_script = plan.describe();
  out.machine_script = plan.serialize_script();

  // Chaos phase: every fault ends by the horizon (restarts included).
  world.run_until(profile.horizon + kSecond);
  // Recovery phase: all in-flight operations must complete (clients retry
  // forever; a recovered system answers them all).
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 150 * kSecond);

  // Verification phase: a final strong read per key pins the outcome of
  // every acknowledged write into the checked history.
  for (const std::string& k : keys) parts.reader.strong_get(k);
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 60 * kSecond);

  out.pending = hist.pending_count();
  out.completed = out.pending == 0;
  out.total_ops = hist.ops().size();
  out.lin = check_kv_history(hist);

  // "No acknowledged write is lost", checked directly: the workload never
  // deletes, so a key with at least one acked Put must be found by its
  // final strong read, and any value read must have been written.
  const auto& ops = hist.ops();
  for (const std::string& k : keys) {
    bool acked_put = false;
    for (const RecordedOp& op : ops) {
      if (op.kind == HistOp::Put && op.key == k && op.responded) acked_put = true;
    }
    const RecordedOp* final_read = nullptr;
    for (const RecordedOp& op : ops) {
      if (op.client == 99 && op.key == k) final_read = &op;
    }
    if (final_read == nullptr || !final_read->responded) continue;  // caught by `completed`
    if (acked_put && !final_read->ok) {
      out.no_lost_writes = false;
      out.lost_diag += "key " + k + ": acked put but final read missed; ";
    }
    if (final_read->ok) {
      bool written = false;
      for (const RecordedOp& op : ops) {
        if (op.kind == HistOp::Put && op.key == k && op.arg == final_read->result) {
          written = true;
        }
      }
      if (!written) {
        out.no_lost_writes = false;
        out.lost_diag += "key " + k + ": final read returned a never-written value; ";
      }
    }
  }

  out.history_dump = hist.dump();
  out.history_text = hist.serialize_text();
  out.history = hist.serialize();
  if (auto* t = world.tracer()) {
    const Time end = world.now();
    out.flight_trace =
        obs::chrome_trace_json(*t, end > kFlightWindow ? end - kFlightWindow : 0, end);
  }
  return out;
}

/// Builds and drives one chaos scenario. `threads` >= 1 enables the
/// deterministic parallel runtime with that many threads (1 still turns on
/// the verification-prefetch machinery, single-threaded); 0 leaves the
/// classic fully-sequential path in place. The outcome must be
/// byte-identical either way — that equivalence is what the parallel
/// determinism suite pins.
inline ChaosOutcome run_chaos(ChaosConfig config, std::uint64_t seed, bool byzantine = false,
                              const std::string* replay_script = nullptr, unsigned threads = 0) {
  World world(seed);
  if (threads >= 1) world.enable_parallelism(threads);
  // Flight recorder: a fixed-memory ring of recent trace events, always on
  // for chaos runs. Recording is out-of-band (no RNG, no scheduling, no
  // wire bytes), so the golden-pinned histories below are unaffected.
  world.enable_tracing(obs::Tracer::Mode::kRing, 1 << 15);
  HistoryRecorder hist(world);

  switch (config) {
    case ChaosConfig::SpiderF1:
    case ChaosConfig::SpiderF2: {
      SpiderTopology topo;
      topo.ka = 8;
      topo.ke = 8;
      topo.ag_win = 32;
      topo.commit_capacity = 16;
      topo.client_retry = kSecond;
      topo.request_timeout = kSecond;
      topo.view_change_timeout = 2 * kSecond;
      if (config == ChaosConfig::SpiderF2) {
        topo.fa = 2;
        topo.fe = 2;
        topo.exec_regions = {Region::Virginia, Region::Oregon};
      } else {
        topo.exec_regions = {Region::Virginia, Region::Tokyo};
      }
      SpiderSystem sys(world, topo);
      FaultPlan plan(world);
      plan.on_crash = [&sys](NodeId n) { sys.crash_node(n); };
      plan.on_restart = [&sys](NodeId n) { sys.restart_node(n); };
      plan.on_byzantine = [&sys](NodeId n, const ByzantineFlags& f) { sys.set_byzantine(n, f); };

      std::vector<std::unique_ptr<SpiderClient>> clients;
      clients.push_back(sys.make_client(Site{Region::Virginia, 0}));
      clients.push_back(sys.make_client(Site{topo.exec_regions.back(), 0}));
      clients.push_back(sys.make_client(Site{Region::Oregon, 1}));

      ScenarioParts parts;
      parts.byzantine = byzantine;
      parts.replay_script = replay_script;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        parts.handles.push_back(chaos::ClientHandle::wrap(hist, *clients[i], i));
      }
      parts.reader = chaos::ClientHandle::wrap(hist, *clients[0], 99);
      parts.crash_targets = sys.replica_ids();
      parts.partition_groups.push_back(sys.agreement_ids());
      for (GroupId g : sys.group_ids()) {
        std::vector<NodeId> members;
        for (std::size_t i = 0; i < sys.group_size(g); ++i) members.push_back(sys.exec(g, i).id());
        parts.partition_groups.push_back(std::move(members));
      }
      // Threat-model caps: ≤fa Byzantine agreement replicas, ≤fe per
      // execution group (partition_groups[0] is the agreement group, the
      // rest are the execution groups).
      parts.byz_consensus_groups = {sys.agreement_ids()};
      parts.byz_exec_groups.assign(parts.partition_groups.begin() + 1,
                                   parts.partition_groups.end());
      parts.max_byz_consensus = topo.fa;
      parts.max_byz_exec = topo.fe;
      parts.max_concurrent_crashes = config == ChaosConfig::SpiderF2 ? 2 : 1;
      return drive_chaos(world, hist, plan, std::move(parts));
    }

    case ChaosConfig::PbftBaseline: {
      BftConfig cfg;
      cfg.sites = {Site{Region::Virginia, 0}, Site{Region::Oregon, 0}, Site{Region::Ireland, 0},
                   Site{Region::Tokyo, 0}};
      cfg.checkpoint_interval = 8;
      cfg.request_timeout = 2 * kSecond;
      cfg.view_change_timeout = 3 * kSecond;
      BftSystem sys(world, cfg);
      FaultPlan plan(world);
      plan.on_crash = [&sys](NodeId n) { sys.crash_node(n); };
      plan.on_restart = [&sys](NodeId n) { sys.restart_node(n); };
      plan.on_byzantine = [&sys](NodeId n, const ByzantineFlags& f) { sys.set_byzantine(n, f); };

      std::vector<std::unique_ptr<SpiderClient>> clients;
      clients.push_back(sys.make_client(Site{Region::Virginia, 1}));
      clients.push_back(sys.make_client(Site{Region::Tokyo, 1}));

      ScenarioParts parts;
      parts.byzantine = byzantine;
      parts.replay_script = replay_script;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        parts.handles.push_back(chaos::ClientHandle::wrap(hist, *clients[i], i));
      }
      parts.reader = chaos::ClientHandle::wrap(hist, *clients[0], 99);
      parts.crash_targets = sys.replica_ids();
      for (NodeId n : sys.replica_ids()) parts.partition_groups.push_back({n});
      // Baseline replicas both order and execute, so they appear once, as
      // one consensus group capped at f (they draw corrupt-replies from
      // the consensus-role action set).
      parts.byz_consensus_groups = {sys.replica_ids()};
      parts.max_byz_consensus = cfg.f;
      parts.ops_per_client = 8;  // WAN consensus: each op takes ~2 RTTs
      return drive_chaos(world, hist, plan, std::move(parts));
    }

    case ChaosConfig::Sharded2: {
      ShardedTopology topo;
      topo.shards = 2;
      topo.base.exec_regions = {Region::Virginia};
      topo.base.ka = 8;
      topo.base.ke = 8;
      topo.base.ag_win = 32;
      topo.base.commit_capacity = 16;
      topo.base.client_retry = kSecond;
      topo.base.request_timeout = kSecond;
      topo.base.view_change_timeout = 2 * kSecond;
      ShardedSpiderSystem sys(world, topo);
      FaultPlan plan(world);
      plan.on_crash = [&sys](NodeId n) { sys.crash_node(n); };
      plan.on_restart = [&sys](NodeId n) { sys.restart_node(n); };
      plan.on_byzantine = [&sys](NodeId n, const ByzantineFlags& f) { sys.set_byzantine(n, f); };

      std::vector<std::unique_ptr<ShardedClient>> clients;
      clients.push_back(sys.make_client(Site{Region::Virginia, 0}));
      clients.push_back(sys.make_client(Site{Region::Virginia, 1}));

      ScenarioParts parts;
      parts.byzantine = byzantine;
      parts.replay_script = replay_script;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        parts.handles.push_back(chaos::ClientHandle::wrap(hist, *clients[i], i));
      }
      parts.reader = chaos::ClientHandle::wrap(hist, *clients[0], 99);
      parts.crash_targets = sys.replica_ids();
      for (std::uint32_t s = 0; s < sys.shard_count(); ++s) {
        // Each shard's agreement group is its own consensus group (the ≤f
        // cap applies per group, so both shards may host an adversary).
        parts.byz_consensus_groups.push_back(sys.core(s).agreement_ids());
        parts.partition_groups.push_back(sys.core(s).agreement_ids());
        for (GroupId g : sys.core(s).group_ids()) {
          std::vector<NodeId> members;
          for (std::size_t i = 0; i < sys.core(s).group_size(g); ++i) {
            members.push_back(sys.core(s).exec(g, i).id());
          }
          parts.byz_exec_groups.push_back(members);
          parts.partition_groups.push_back(std::move(members));
        }
      }
      parts.max_byz_consensus = topo.base.fa;
      parts.max_byz_exec = topo.base.fe;
      return drive_chaos(world, hist, plan, std::move(parts));
    }
  }
  return {};
}

}  // namespace spider
