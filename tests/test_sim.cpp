#include <gtest/gtest.h>

#include "common/serde.hpp"
#include "sim/node.hpp"
#include "sim/world.hpp"

namespace spider {
namespace {

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, FifoAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(10, [&] { order.push_back(2); });
  q.schedule_at(10, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, Cancel) {
  EventQueue q;
  bool fired = false;
  auto id = q.schedule_at(10, [&] { fired = true; });
  q.cancel(id);
  q.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  auto id = q.schedule_at(10, [] {});
  q.run_all();
  q.cancel(id);  // must not crash
}

TEST(EventQueue, RunUntilAdvancesClock) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] { count++; });
  q.schedule_at(100, [&] { count++; });
  q.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.now(), 50);
  q.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run_all();
  Time fired_at = -1;
  q.schedule_at(5, [&] { fired_at = q.now(); });
  q.run_all();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventQueue, EventsScheduleEvents) {
  EventQueue q;
  std::vector<Time> times;
  q.schedule_at(10, [&] {
    times.push_back(q.now());
    q.schedule_after(5, [&] { times.push_back(q.now()); });
  });
  q.run_all();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

TEST(EventQueue, FifoTieBreakSurvivesCancelChurn) {
  // The heap's (time, id) order must reproduce exact scheduling order at
  // equal timestamps even when interleaved cancels punch holes into the
  // heap (tombstones must never perturb the survivors' relative order).
  EventQueue q;
  std::vector<int> order;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(q.schedule_at(10, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 200; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  q.run_all();
  std::vector<int> expect;
  for (int i = 1; i < 200; i += 2) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(EventQueue, CancelledEntriesDoNotAccumulate) {
  // Lazy deletion must be bounded: cancelling almost everything compacts
  // the heap, so tombstones can never exceed ~half the slots.
  EventQueue q;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(q.schedule_at(100 + i, [] {}));
  }
  for (int i = 0; i < 9900; ++i) q.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(q.pending(), 100u);
  EXPECT_LE(q.heap_slots(), 2 * q.pending() + 64)
      << "cancel leak: dead entries lingering in the heap";

  // The survivors still fire.
  std::size_t n = 0;
  while (q.run_next()) ++n;
  EXPECT_EQ(n, 100u);
}

TEST(EventQueue, CancelOfStaleIdNeverKillsALaterEvent) {
  // Ids are generation counters: once an id fires, cancelling it is a
  // permanent no-op — it can never alias a later event.
  EventQueue q;
  auto stale = q.schedule_at(10, [] {});
  q.run_all();
  bool fired = false;
  q.schedule_at(20, [&] { fired = true; });
  q.cancel(stale);
  q.run_all();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelFromInsideHandler) {
  EventQueue q;
  bool victim_fired = false;
  EventQueue::EventId victim = 0;
  q.schedule_at(10, [&] { q.cancel(victim); });
  victim = q.schedule_at(20, [&] { victim_fired = true; });
  bool after_fired = false;
  q.schedule_at(30, [&] { after_fired = true; });
  q.run_all();
  EXPECT_FALSE(victim_fired);
  EXPECT_TRUE(after_fired);
}

TEST(EventQueue, RunUntilSkipsCancelledHead) {
  EventQueue q;
  auto head = q.schedule_at(10, [] {});
  int fired = 0;
  q.schedule_at(40, [&] { ++fired; });
  q.cancel(head);
  q.run_until(20);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(fired, 0);
  q.run_until(50);
  EXPECT_EQ(fired, 1);
}

// ------------------------------------------------------------- Topology

TEST(Topology, RttSymmetric) {
  for (int a = 0; a < kNumRegions; ++a) {
    for (int b = 0; b < kNumRegions; ++b) {
      EXPECT_EQ(region_rtt(static_cast<Region>(a), static_cast<Region>(b)),
                region_rtt(static_cast<Region>(b), static_cast<Region>(a)));
    }
  }
}

TEST(Topology, SelfRttZero) {
  EXPECT_EQ(region_rtt(Region::Virginia, Region::Virginia), 0);
}

TEST(Topology, AzLatencies) {
  Site a{Region::Virginia, 0}, b{Region::Virginia, 1}, c{Region::Virginia, 0};
  EXPECT_EQ(one_way_latency(a, b), 600);  // inter-AZ 1.2ms RTT
  EXPECT_EQ(one_way_latency(a, c), 200);  // intra-AZ 0.4ms RTT
}

TEST(Topology, WanClassification) {
  Site va{Region::Virginia, 0}, or_{Region::Oregon, 0}, va2{Region::Virginia, 2};
  EXPECT_TRUE(is_wan(va, or_));
  EXPECT_FALSE(is_wan(va, va2));
}

TEST(Topology, CrossRegionLatencyMatchesMatrix) {
  Site va{Region::Virginia, 0}, tk{Region::Tokyo, 1};
  EXPECT_EQ(one_way_latency(va, tk), region_rtt(Region::Virginia, Region::Tokyo) / 2);
}

TEST(Topology, NamesAndCodes) {
  EXPECT_STREQ(region_name(Region::SaoPaulo), "SaoPaulo");
  EXPECT_STREQ(region_code(Region::Virginia), "V");
  EXPECT_STREQ(region_code(Region::Seoul), "SE");
}

// ------------------------------------------------------------- Node + Network

/// Test node that records inbound messages and can echo.
class EchoNode : public SimNode {
 public:
  using SimNode::SimNode;

  void on_message(NodeId from, BytesView data) override {
    received.emplace_back(from, to_bytes(data));
    received_at.push_back(now());
    if (echo) send_to(from, to_bytes(data));
    if (extra_charge > 0) charge(extra_charge);
  }

  std::vector<std::pair<NodeId, Bytes>> received;
  std::vector<Time> received_at;
  bool echo = false;
  Duration extra_charge = 0;
};

struct NetFixture {
  World world{1};
  EchoNode va;
  EchoNode tokyo;

  NetFixture()
      : va(world, world.allocate_id(), Site{Region::Virginia, 0}),
        tokyo(world, world.allocate_id(), Site{Region::Tokyo, 0}) {}
};

TEST(SimNetwork, DeliversWithWanLatency) {
  NetFixture f;
  f.va.send_to(f.tokyo.id(), to_bytes(std::string("ping")));
  f.world.run_for(200 * kMillisecond);
  ASSERT_EQ(f.tokyo.received.size(), 1u);
  EXPECT_EQ(to_string(f.tokyo.received[0].second), "ping");
  // One-way Virginia->Tokyo is 78ms (156ms RTT); allow jitter and overhead.
  Time at = f.tokyo.received_at[0];
  EXPECT_GE(at, 78 * kMillisecond);
  EXPECT_LE(at, 82 * kMillisecond);
}

TEST(SimNetwork, RoundTripEcho) {
  NetFixture f;
  f.tokyo.echo = true;
  f.va.send_to(f.tokyo.id(), to_bytes(std::string("ping")));
  f.world.run_for(400 * kMillisecond);
  ASSERT_EQ(f.va.received.size(), 1u);
  EXPECT_GE(f.va.received_at[0], 156 * kMillisecond);
  EXPECT_LE(f.va.received_at[0], 165 * kMillisecond);
}

TEST(SimNetwork, FifoPerPair) {
  NetFixture f;
  for (int i = 0; i < 20; ++i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    f.va.send_to(f.tokyo.id(), std::move(w).take());
  }
  f.world.run_for(200 * kMillisecond);
  ASSERT_EQ(f.tokyo.received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    Reader r(f.tokyo.received[static_cast<std::size_t>(i)].second);
    EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(i));
  }
}

TEST(SimNetwork, ByteAccounting) {
  NetFixture f;
  Bytes msg(1000, 0);
  f.va.send_to(f.tokyo.id(), msg);
  f.world.run_for(200 * kMillisecond);
  EXPECT_EQ(f.world.net().stats().wan_bytes, 1000u);
  EXPECT_EQ(f.world.net().stats().wan_msgs, 1u);
  EXPECT_EQ(f.world.net().stats().lan_bytes, 0u);
  EXPECT_EQ(f.world.net().node_stats(f.va.id()).sent_wan_bytes, 1000u);
  EXPECT_EQ(f.world.net().node_stats(f.tokyo.id()).recv_bytes, 1000u);
}

TEST(SimNetwork, LanAccounting) {
  World world{1};
  EchoNode a(world, world.allocate_id(), Site{Region::Ireland, 0});
  EchoNode b(world, world.allocate_id(), Site{Region::Ireland, 1});
  a.send_to(b.id(), Bytes(10, 0));
  world.run_for(10 * kMillisecond);
  EXPECT_EQ(world.net().stats().lan_bytes, 10u);
  EXPECT_EQ(world.net().stats().wan_bytes, 0u);
}

TEST(SimNetwork, LinkFilterDrops) {
  NetFixture f;
  f.world.net().set_link_filter(
      [&](NodeId from, NodeId) { return from != f.va.id(); });
  f.va.send_to(f.tokyo.id(), to_bytes(std::string("dropped")));
  f.world.run_for(200 * kMillisecond);
  EXPECT_TRUE(f.tokyo.received.empty());
}

TEST(SimNetwork, DownNodeReceivesNothing) {
  NetFixture f;
  f.world.net().set_node_down(f.tokyo.id(), true);
  f.va.send_to(f.tokyo.id(), to_bytes(std::string("x")));
  f.world.run_for(200 * kMillisecond);
  EXPECT_TRUE(f.tokyo.received.empty());
  // Recovery: node comes back and receives subsequent traffic.
  f.world.net().set_node_down(f.tokyo.id(), false);
  f.va.send_to(f.tokyo.id(), to_bytes(std::string("y")));
  f.world.run_for(200 * kMillisecond);
  ASSERT_EQ(f.tokyo.received.size(), 1u);
  EXPECT_EQ(to_string(f.tokyo.received[0].second), "y");
}

TEST(SimNode, CpuSerializesWork) {
  World world{1};
  EchoNode sender(world, world.allocate_id(), Site{Region::Virginia, 0});
  EchoNode busy(world, world.allocate_id(), Site{Region::Virginia, 0});
  busy.extra_charge = 10 * kMillisecond;  // each message costs 10ms CPU

  for (int i = 0; i < 3; ++i) sender.send_to(busy.id(), Bytes{1});
  world.run_for(kSecond);
  ASSERT_EQ(busy.received.size(), 3u);
  // Handling is serialized: starts roughly 10ms apart.
  EXPECT_GE(busy.received_at[1] - busy.received_at[0], 10 * kMillisecond);
  EXPECT_GE(busy.received_at[2] - busy.received_at[1], 10 * kMillisecond);
  EXPECT_GE(busy.busy_time(), 30 * kMillisecond);
}

TEST(SimNode, ChargeDelaysOutputs) {
  World world{1};
  EchoNode client(world, world.allocate_id(), Site{Region::Virginia, 0});
  EchoNode server(world, world.allocate_id(), Site{Region::Virginia, 0});
  server.echo = true;
  server.extra_charge = 5 * kMillisecond;

  client.send_to(server.id(), Bytes{1});
  world.run_for(kSecond);
  ASSERT_EQ(client.received.size(), 1u);
  // Echo reply leaves only after the 5ms CPU charge.
  EXPECT_GE(client.received_at[0], 5 * kMillisecond);
}

TEST(SimNode, TimerFiresAndCancels) {
  World world{1};
  EchoNode n(world, world.allocate_id(), Site{Region::Virginia, 0});
  int fired = 0;
  n.set_timer(10 * kMillisecond, [&] { fired++; });
  auto id = n.set_timer(20 * kMillisecond, [&] { fired++; });
  n.cancel_timer(id);
  world.run_for(kSecond);
  EXPECT_EQ(fired, 1);
}

TEST(SimNode, DeterministicAcrossRuns) {
  auto run = [] {
    World world{42};
    EchoNode a(world, world.allocate_id(), Site{Region::Virginia, 0});
    EchoNode b(world, world.allocate_id(), Site{Region::Tokyo, 0});
    b.echo = true;
    for (int i = 0; i < 5; ++i) a.send_to(b.id(), Bytes{static_cast<std::uint8_t>(i)});
    world.run_for(kSecond);
    std::vector<Time> times = a.received_at;
    return times;
  };
  EXPECT_EQ(run(), run());
}

TEST(World, AllocatesDistinctIds) {
  World world{1};
  NodeId a = world.allocate_id();
  NodeId b = world.allocate_id();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace spider
