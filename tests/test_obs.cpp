// Observability subsystem tests: log-bucketed histograms (merge, error
// bounds, overflow), the metrics registry (label keying, deterministic
// snapshots, merge), the tracer (ring rotation, request-id correlation),
// the Chrome-trace exporter, the null sink's zero-allocation contract, and
// byte-identical traces across seed replays of a full Spider run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "app/kvstore.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

// ---- allocation counting for the null-sink contract -----------------------
// Overriding the global allocator in this test binary only: every operator
// new bumps a counter, so a scope can assert it allocated nothing.
namespace {
std::uint64_t g_allocs = 0;
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace spider {
namespace {

using obs::LogHistogram;
using obs::MetricsRegistry;
using obs::Tracer;

// ---- LogHistogram ---------------------------------------------------------

TEST(LogHistogram, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99.9), 0u);
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 2 * LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::bucket_width(LogHistogram::bucket_index(v)), 1u) << v;
    h.add(v);
  }
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(h.percentile(100), 2 * LogHistogram::kSubBuckets - 1);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 2 * LogHistogram::kSubBuckets - 1);
}

TEST(LogHistogram, BucketGeometryIsConsistent) {
  // bucket_lower/bucket_width invert bucket_index across magnitudes,
  // including the overflow octave at the top of the 64-bit range.
  std::vector<std::uint64_t> probes = {0, 1, 31, 32, 33, 100, 1000, 65535, 1ull << 20,
                                       (1ull << 40) + 12345, ~0ull - 1, ~0ull};
  for (std::uint64_t v : probes) {
    std::size_t i = LogHistogram::bucket_index(v);
    ASSERT_LT(i, LogHistogram::kBuckets) << v;
    EXPECT_LE(LogHistogram::bucket_lower(i), v) << v;
    // v < lower + width, guarding overflow at the top bucket.
    std::uint64_t lower = LogHistogram::bucket_lower(i);
    std::uint64_t width = LogHistogram::bucket_width(i);
    EXPECT_TRUE(width == 0 || v - lower < width || lower + width < lower) << v;
  }
  // Monotone: growing values never map to a smaller bucket.
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; v += 13) {
    std::size_t i = LogHistogram::bucket_index(v);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(LogHistogram, PercentileWithinDocumentedBound) {
  // Relative error of any quantile <= 2^-(kSubBits+1) = 3.125%.
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.add(v);
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double exact = p / 100.0 * 100000.0;
    const double got = static_cast<double>(h.percentile(p));
    EXPECT_NEAR(got, exact, exact * 0.03125 + 1.0) << "p=" << p;
  }
}

TEST(LogHistogram, OverflowValuesLandInTopBucketsSafely) {
  LogHistogram h;
  h.add(~0ull);
  h.add(~0ull - 1);
  h.add(1ull << 63);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), ~0ull);
  EXPECT_EQ(h.min(), 1ull << 63);
  // Percentiles clamp to the observed range — no wrap-around garbage.
  EXPECT_GE(h.percentile(50), h.min());
  EXPECT_LE(h.percentile(100), h.max());
}

TEST(LogHistogram, MergeMatchesCombinedStream) {
  LogHistogram a, b, combined;
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    std::uint64_t v = x % 1000000;
    (i % 2 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << p;
  }
}

TEST(LogHistogram, WeightedAddAndClear) {
  LogHistogram h;
  h.add(10, 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 1000u);
  EXPECT_EQ(h.percentile(50), 10u);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
}

// ---- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, LabelsKeySeparateSeries) {
  MetricsRegistry reg;
  reg.counter("ops", {.node = 1}).inc(5);
  reg.counter("ops", {.node = 2}).inc(7);
  reg.counter("ops", {.node = 1, .role = "client"}).inc(1);
  EXPECT_EQ(reg.counter("ops", {.node = 1}).value(), 5u);
  EXPECT_EQ(reg.counter("ops", {.node = 2}).value(), 7u);
  EXPECT_EQ(reg.counter("ops", {.node = 1, .role = "client"}).value(), 1u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, ReferencesAreStableAcrossInserts) {
  MetricsRegistry reg;
  obs::Counter& first = reg.counter("a");
  for (int i = 0; i < 100; ++i) reg.counter("x" + std::to_string(i), {});
  first.inc();
  EXPECT_EQ(reg.counter("a").value(), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry reg;
  reg.gauge("zz").set(-3);
  reg.counter("aa", {.node = 2}).inc(1);
  reg.counter("aa", {.node = 1}).inc(2);
  reg.histogram("lat", {.node = 1, .role = "client"}).add(100);
  std::string snap = reg.snapshot_json();
  // One JSON object per line; "aa" node 1 sorts before node 2 before the
  // rest; repeated snapshots are byte-identical.
  EXPECT_EQ(snap, reg.snapshot_json());
  std::size_t a1 = snap.find("\"metric\":\"aa\",\"type\":\"counter\",\"node\":1");
  std::size_t a2 = snap.find("\"metric\":\"aa\",\"type\":\"counter\",\"node\":2");
  std::size_t z = snap.find("\"metric\":\"zz\"");
  std::size_t lat = snap.find("\"metric\":\"lat\"");
  ASSERT_NE(a1, std::string::npos) << snap;
  ASSERT_NE(a2, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  ASSERT_NE(lat, std::string::npos);
  EXPECT_LT(a1, a2);
  EXPECT_LT(a2, lat);
  EXPECT_LT(lat, z);
  EXPECT_NE(snap.find("\"p999\""), std::string::npos);
  EXPECT_NE(snap.find("\"unit\":\"us\""), std::string::npos);
  for (char c : {'{', '}'}) {
    EXPECT_EQ(std::count(snap.begin(), snap.end(), c), 4) << c;
  }
}

TEST(MetricsRegistry, MergeFromAddsCountersOverwritesGaugesMergesHistograms) {
  MetricsRegistry a, b;
  a.counter("c").inc(3);
  b.counter("c").inc(4);
  a.gauge("g").set(1);
  b.gauge("g").set(9);
  a.histogram("h").add(10);
  b.histogram("h").add(20);
  b.counter("only_b").inc(1);
  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 7u);
  EXPECT_EQ(a.gauge("g").value(), 9);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
}

// ---- Tracer ---------------------------------------------------------------

TEST(Tracer, RingModeKeepsLastEventsInOrder) {
  Tracer t(Tracer::Mode::kRing, 8);
  for (Time i = 0; i < 20; ++i) t.instant(i, 1, "cat", "ev");
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  std::vector<obs::TraceEvent> evs = t.snapshot();
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].ts, static_cast<Time>(12 + i));
  }
}

TEST(Tracer, RequestIdSeparatesStreamsAndClients) {
  EXPECT_NE(obs::request_id(1, 0), obs::request_id(2, 0));
  EXPECT_NE(obs::request_id(1, 0), obs::request_id(1, 1));
  EXPECT_NE(obs::request_id(1, 5, /*weak=*/false), obs::request_id(1, 5, /*weak=*/true));
}

TEST(Tracer, NullSinkHooksAllocateNothing) {
  // The instrumentation pattern used across the codebase, with no tracer
  // attached: must be a branch and nothing else.
  World world(1);
  ASSERT_EQ(world.tracer(), nullptr);
  const std::uint64_t before = g_allocs;
  for (int i = 0; i < 100000; ++i) {
    if (auto* t = world.tracer()) {
      t->instant(world.now(), 1, "never", "reached", "k", static_cast<std::uint64_t>(i));
    }
  }
  EXPECT_EQ(g_allocs, before);
}

TEST(Tracer, RingRecordDoesNotAllocateOnceFull) {
  Tracer t(Tracer::Mode::kRing, 16);
  for (Time i = 0; i < 16; ++i) t.instant(i, 1, "c", "n");
  const std::uint64_t before = g_allocs;
  for (Time i = 16; i < 10000; ++i) t.instant(i, 1, "c", "n");
  EXPECT_EQ(g_allocs, before);
  EXPECT_EQ(t.dropped(), 10000u - 16u);
}

// ---- exporter -------------------------------------------------------------

TEST(TraceExport, EmitsWellFormedChromeTraceWithWindow) {
  Tracer t;
  t.name_process(3, "replica-3");
  t.instant(100, 3, "net-lan", "send", "bytes", 42);
  t.async(obs::Ph::kAsyncBegin, 200, 7, obs::request_id(7, 1), "request", "ordered");
  t.complete(300, 50, 3, "cpu", "task");
  t.async(obs::Ph::kAsyncEnd, 900, 7, obs::request_id(7, 1), "request", "ordered");
  std::string full = obs::chrome_trace_json(t);
  EXPECT_EQ(full.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(full.find("\"process_name\""), std::string::npos);
  EXPECT_NE(full.find("replica-3"), std::string::npos);
  EXPECT_NE(full.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(full.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(full.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(full.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(full.find("\"bytes\":42"), std::string::npos);

  // Window filter: [0, 250] keeps the instant and the begin, drops the rest
  // (metadata rows always survive).
  std::string windowed = obs::chrome_trace_json(t, 0, 250);
  EXPECT_NE(windowed.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(windowed.find("\"ts\":200"), std::string::npos);
  EXPECT_EQ(windowed.find("\"ts\":300"), std::string::npos);
  EXPECT_EQ(windowed.find("\"ts\":900"), std::string::npos);
  EXPECT_NE(windowed.find("\"process_name\""), std::string::npos);
}

// ---- end to end: traced Spider runs ---------------------------------------

std::string traced_spider_run(std::uint64_t seed) {
  World world(seed);
  world.enable_tracing(Tracer::Mode::kFull);
  SpiderTopology topo;
  SpiderSystem sys(world, topo);
  auto client = sys.make_client(Site{Region::Oregon, 0});
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    client->write(kv_put("k" + std::to_string(i), to_bytes("v")),
                  [&done](Bytes, Duration) { ++done; });
  }
  client->weak_read(kv_get("k0"), [&done](Bytes, Duration) { ++done; });
  world.run_for(20 * kSecond);
  EXPECT_EQ(done, 6);
  return obs::chrome_trace_json(*world.tracer());
}

TEST(TraceEndToEnd, SeedReplayProducesByteIdenticalTrace) {
  std::string a = traced_spider_run(42);
  std::string b = traced_spider_run(42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, traced_spider_run(43));
}

TEST(TraceEndToEnd, RequestLifecycleStagesAppear) {
  std::string t = traced_spider_run(42);
  // Client submit -> consensus -> IRMC -> execution -> reply, all present.
  for (const char* marker :
       {"\"ordered\"", "\"direct\"", "\"propose\"", "\"prepared\"", "\"committed\"",
        "\"deliver\"", "rc-send", "rc-deliver", "\"execute\"", "\"reply\"", "\"cat\":\"cpu\"",
        "net-wan", "net-lan", "ag-Virginia/0", "client-Oregon"}) {
    EXPECT_NE(t.find(marker), std::string::npos) << marker;
  }
}

TEST(TraceEndToEnd, MetricsSnapshotIsDeterministicAcrossReplay) {
  auto run = [](std::uint64_t seed) {
    World world(seed);
    SpiderTopology topo;
    SpiderSystem sys(world, topo);
    auto client = sys.make_client(Site{Region::Virginia, 0});
    int done = 0;
    for (int i = 0; i < 4; ++i) {
      client->write(kv_put("k", to_bytes("v")), [&done](Bytes, Duration) { ++done; });
    }
    world.run_for(15 * kSecond);
    EXPECT_EQ(done, 4);
    world.refresh_platform_metrics();
    return world.metrics().snapshot_json();
  };
  std::string a = run(5);
  EXPECT_EQ(a, run(5));
  EXPECT_NE(a.find("client_latency_ordered"), std::string::npos);
  EXPECT_NE(a.find("eventqueue_fired"), std::string::npos);
  EXPECT_NE(a.find("payload_digest_computations"), std::string::npos);
}

}  // namespace
}  // namespace spider
