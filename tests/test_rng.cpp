#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace spider {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformZeroBound) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, ForkIndependent) {
  Rng a(99);
  Rng b = a.fork();
  // The fork advances the parent; both streams should still be deterministic
  // and different from each other.
  Rng a2(99);
  Rng b2 = a2.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.next(), a2.next());
    EXPECT_EQ(b.next(), b2.next());
  }
}

}  // namespace
}  // namespace spider
