#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/bigint.hpp"

namespace spider {
namespace {

BigInt from_hex_str(const std::string& s) {
  std::string padded = s.size() % 2 ? "0" + s : s;
  return BigInt::from_bytes_be(from_hex(padded));
}

TEST(BigInt, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex_string(), "0");
}

TEST(BigInt, SmallValues) {
  BigInt v(0xdeadbeef);
  EXPECT_EQ(v.low_u64(), 0xdeadbeefu);
  EXPECT_EQ(v.bit_length(), 32u);
  EXPECT_EQ(v.to_hex_string(), "deadbeef");
}

TEST(BigInt, ByteRoundTrip) {
  Bytes b = from_hex("0123456789abcdef00112233445566778899aabbccddeeff");
  BigInt v = BigInt::from_bytes_be(b);
  EXPECT_EQ(to_hex(v.to_bytes_be(b.size())), to_hex(b));
}

TEST(BigInt, LeadingZerosStripped) {
  Bytes b = from_hex("000000ff");
  BigInt v = BigInt::from_bytes_be(b);
  EXPECT_EQ(v.low_u64(), 0xffu);
  EXPECT_EQ(v.bit_length(), 8u);
}

TEST(BigInt, ToBytesFixedWidthPads) {
  BigInt v(0xff);
  Bytes out = v.to_bytes_be(4);
  EXPECT_EQ(to_hex(out), "000000ff");
}

TEST(BigInt, ToBytesTooSmallThrows) {
  BigInt v(0x1ff);
  EXPECT_THROW(v.to_bytes_be(1), std::length_error);
}

TEST(BigInt, Comparisons) {
  BigInt a(5), b(7);
  EXPECT_LT(BigInt::cmp(a, b), 0);
  EXPECT_GT(BigInt::cmp(b, a), 0);
  EXPECT_EQ(BigInt::cmp(a, a), 0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == BigInt(5));
}

TEST(BigInt, AddWithCarryChain) {
  // 2^128 - 1 + 1 == 2^128
  BigInt a = from_hex_str("ffffffffffffffffffffffffffffffff");
  BigInt one(1);
  BigInt sum = BigInt::add(a, one);
  EXPECT_EQ(sum.to_hex_string(), "100000000000000000000000000000000");
}

TEST(BigInt, SubWithBorrowChain) {
  BigInt a = from_hex_str("100000000000000000000000000000000");
  BigInt r = BigInt::sub(a, BigInt(1));
  EXPECT_EQ(r.to_hex_string(), "ffffffffffffffffffffffffffffffff");
}

TEST(BigInt, SubUnderflowThrows) {
  EXPECT_THROW(BigInt::sub(BigInt(1), BigInt(2)), std::domain_error);
}

TEST(BigInt, MulKnownValue) {
  // 0xffffffffffffffff * 0xffffffffffffffff = 0xfffffffffffffffe0000000000000001
  BigInt a(~std::uint64_t{0});
  BigInt p = BigInt::mul(a, a);
  EXPECT_EQ(p.to_hex_string(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, MulByZero) {
  BigInt a(12345);
  EXPECT_TRUE(BigInt::mul(a, BigInt()).is_zero());
  EXPECT_TRUE(BigInt::mul(BigInt(), a).is_zero());
}

TEST(BigInt, ShiftLeftRightInverse) {
  BigInt v = from_hex_str("abcdef123456789");
  for (std::size_t s : {1u, 7u, 63u, 64u, 65u, 130u}) {
    EXPECT_EQ(BigInt::cmp(BigInt::shr(BigInt::shl(v, s), s), v), 0) << "shift " << s;
  }
}

TEST(BigInt, ShiftRightDropsBits) {
  BigInt v(0b1011);
  EXPECT_EQ(BigInt::shr(v, 1).low_u64(), 0b101u);
  EXPECT_EQ(BigInt::shr(v, 4).low_u64(), 0u);
}

TEST(BigInt, DivModByZeroThrows) {
  EXPECT_THROW(BigInt::divmod(BigInt(1), BigInt()), std::domain_error);
}

TEST(BigInt, DivModSmall) {
  auto [q, r] = BigInt::divmod(BigInt(100), BigInt(7));
  EXPECT_EQ(q.low_u64(), 14u);
  EXPECT_EQ(r.low_u64(), 2u);
}

TEST(BigInt, DivModDividendSmaller) {
  auto [q, r] = BigInt::divmod(BigInt(3), BigInt(7));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r.low_u64(), 3u);
}

TEST(BigInt, DivModKnownLarge) {
  BigInt a = from_hex_str("fedcba9876543210fedcba9876543210fedcba9876543210");
  BigInt b = from_hex_str("ffffffffffffffff0000000000000001");
  auto [q, r] = BigInt::divmod(a, b);
  // Verify by reconstruction: a == q*b + r and r < b.
  EXPECT_EQ(BigInt::cmp(BigInt::add(BigInt::mul(q, b), r), a), 0);
  EXPECT_TRUE(r < b);
}

// Property sweep: a = q*b + r with r < b across deterministic random sizes.
class BigIntDivSweep : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BigIntDivSweep, QuotientRemainderInvariant) {
  auto [abits, bbits] = GetParam();
  Rng rng(abits * 1000003 + bbits);
  for (int i = 0; i < 25; ++i) {
    BigInt a = BigInt::random_bits(rng, abits);
    BigInt b = BigInt::random_bits(rng, bbits);
    if (b.is_zero()) b = BigInt(1);
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(BigInt::cmp(BigInt::add(BigInt::mul(q, b), r), a), 0);
    EXPECT_TRUE(r < b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BigIntDivSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{128, 64},
                      std::pair<std::size_t, std::size_t>{256, 128},
                      std::pair<std::size_t, std::size_t>{512, 256},
                      std::pair<std::size_t, std::size_t>{1024, 512},
                      std::pair<std::size_t, std::size_t>{2048, 1024},
                      std::pair<std::size_t, std::size_t>{521, 129},
                      std::pair<std::size_t, std::size_t>{1025, 1024}));

TEST(BigInt, MulModMatchesManual) {
  Rng rng(5);
  BigInt m = BigInt::random_bits(rng, 256);
  if (m.is_zero()) m = BigInt(97);
  BigInt a = BigInt::random_bits(rng, 300);
  BigInt b = BigInt::random_bits(rng, 300);
  EXPECT_EQ(BigInt::cmp(BigInt::mulmod(a, b, m), BigInt::mod(BigInt::mul(a, b), m)), 0);
}

TEST(BigInt, PowModSmallKnown) {
  // 3^10 mod 1000 = 59049 mod 1000 = 49
  EXPECT_EQ(BigInt::powmod(BigInt(3), BigInt(10), BigInt(1000)).low_u64(), 49u);
}

TEST(BigInt, PowModFermat) {
  // Fermat: a^(p-1) == 1 mod p for prime p not dividing a.
  BigInt p(1000003);
  for (std::uint64_t a : {2ULL, 3ULL, 65537ULL, 999999ULL}) {
    EXPECT_EQ(BigInt::powmod(BigInt(a), BigInt(1000002), p).low_u64(), 1u) << a;
  }
}

TEST(BigInt, PowModZeroExponent) {
  EXPECT_EQ(BigInt::powmod(BigInt(12345), BigInt(), BigInt(97)).low_u64(), 1u);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)).low_u64(), 12u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).low_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).low_u64(), 5u);
}

TEST(BigInt, InvModKnown) {
  // 3 * 7 = 21 == 1 mod 10
  EXPECT_EQ(BigInt::invmod(BigInt(3), BigInt(10)).low_u64(), 7u);
}

TEST(BigInt, InvModProperty) {
  Rng rng(31);
  BigInt m = BigInt::generate_prime(rng, 128);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::mod(BigInt::random_bits(rng, 200), m);
    if (a.is_zero()) continue;
    BigInt inv = BigInt::invmod(a, m);
    EXPECT_EQ(BigInt::mulmod(a, inv, m).low_u64(), 1u);
  }
}

TEST(BigInt, InvModNotInvertibleThrows) {
  EXPECT_THROW(BigInt::invmod(BigInt(4), BigInt(8)), std::domain_error);
}

TEST(BigInt, PrimalityKnownPrimes) {
  Rng rng(1);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 65537ULL, 1000003ULL, 2147483647ULL}) {
    EXPECT_TRUE(BigInt::is_probable_prime(BigInt(p), rng)) << p;
  }
}

TEST(BigInt, PrimalityKnownComposites) {
  Rng rng(2);
  // Includes Carmichael numbers 561, 41041.
  for (std::uint64_t c : {1ULL, 4ULL, 561ULL, 41041ULL, 65536ULL, 1000001ULL}) {
    EXPECT_FALSE(BigInt::is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(BigInt, GeneratePrimeHasExactBitsAndIsOdd) {
  Rng rng(77);
  for (std::size_t bits : {64u, 128u, 256u}) {
    BigInt p = BigInt::generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(BigInt::is_probable_prime(p, rng));
  }
}

TEST(BigInt, BitAccess) {
  BigInt v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
}

}  // namespace
}  // namespace spider
