// Crash-restart recovery regressions (paper §3.4/§3.7 + crash-recovery
// extension): a partitioned leader mid-batch, a destroyed-and-rebuilt
// execution replica recovering through fetch_cp, a restarted agreement
// replica rejoining its view, a restarted PBFT-baseline replica, Byzantine
// primaries (muted / equivocating) that must trigger a view change and
// commit exactly once, and the scripted crash/partition/restart acceptance
// scenario with byte-identical seed replay.
#include <gtest/gtest.h>

#include "baselines/bft_system.hpp"
#include "check/linearizer.hpp"
#include "sim/fault_plan.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/chaos.hpp"
#include "tests/support/drive.hpp"

namespace spider {
namespace {

SpiderTopology topo_small() {
  SpiderTopology t;
  t.exec_regions = {Region::Virginia, Region::Tokyo};
  t.ka = 8;
  t.ke = 8;
  t.ag_win = 32;
  t.commit_capacity = 16;
  t.client_retry = kSecond;
  t.request_timeout = kSecond;
  t.view_change_timeout = 2 * kSecond;
  return t;
}

TEST(Recovery, LeaderPartitionedMidBatchCommitsExactlyOnce) {
  World world(11);
  SpiderTopology topo = topo_small();
  topo.max_batch = 4;
  topo.batch_delay = 50 * kMillisecond;
  SpiderSystem sys(world, topo);
  HistoryRecorder hist(world);

  GroupId va = sys.nearest_group(Region::Virginia);
  SeqNr seq_before = sys.exec(va, 0).executed_seq();

  // Four concurrent writers fill one batch; the leader gets cut off from
  // its peers while the instance is in flight.
  std::vector<std::unique_ptr<SpiderClient>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(sys.make_client(Site{Region::Virginia, 0}));
    recorded_put(hist, *clients.back(), i, "k" + std::to_string(i), "v" + std::to_string(i));
  }

  FaultPlan plan(world);
  std::vector<NodeId> leader = {sys.agreement(0).id()};
  std::vector<NodeId> others;
  for (std::size_t i = 1; i < sys.agreement_size(); ++i) others.push_back(sys.agreement(i).id());
  // 1ms: the requests are inside the client -> execution -> request-channel
  // -> consensus pipeline (an intra-region commit takes ~2-3ms end to end),
  // so the leader is cut off with the batch in flight, never completed.
  plan.partition_nodes_at(world.now() + kMillisecond, leader, others);

  bool all_done = drive::run_until(
      world, [&] { return hist.pending_count() == 0; }, 60 * kSecond);
  EXPECT_TRUE(all_done) << hist.dump();

  // The in-flight batch was carried through the view change and committed
  // exactly once: every write acked, history linearizable, and all four
  // values present under a strong read.
  EXPECT_GT(sys.agreement(1).consensus().view(), 0u);
  for (int i = 0; i < 4; ++i) {
    drive::KvOutcome r =
        drive::blocking_strong_read(world, *clients[0], "k" + std::to_string(i));
    EXPECT_TRUE(r.ok) << "k" << i;
    EXPECT_EQ(to_string(r.value), "v" + std::to_string(i));
  }
  LinResult lin = check_kv_history(hist);
  EXPECT_TRUE(lin.ok) << lin.error << "\n" << hist.dump();

  // No residual re-proposals: one more write consumes exactly one slot.
  world.run_for(2 * kSecond);
  SeqNr before_extra = sys.exec(va, 0).executed_seq();
  EXPECT_TRUE(drive::blocking_write(world, *clients[0], "extra", "x").ok);
  EXPECT_EQ(sys.exec(va, 0).executed_seq(), before_extra + 1);
  EXPECT_GE(before_extra, seq_before + 4 + 4);  // 4 writes + 4 strong reads
}

TEST(Recovery, CrashedExecReplicaRecoversViaFetchCpAndServesWeakReads) {
  World world(12);
  SpiderSystem sys(world, topo_small());
  auto client = sys.make_client(Site{Region::Virginia, 0});
  GroupId g = client->group().group;
  NodeId victim = sys.exec(g, 2).id();

  ASSERT_TRUE(drive::blocking_write(world, *client, "warm", "1").ok);

  // Crash = the process is DESTROYED: app state, reply cache, IRMC
  // endpoint state and timers are gone (not just unreachable).
  ASSERT_TRUE(sys.crash_node(victim));
  EXPECT_TRUE(sys.is_crashed(victim));

  // Enough writes that the commit-channel window (capacity 16) moves past
  // everything the victim missed: replay is impossible, only an execution
  // checkpoint can bring it back.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(drive::blocking_write(world, *client, "burst" + std::to_string(i), "x").ok);
  }
  SeqNr healthy = sys.exec(g, 0).executed_seq();

  ASSERT_TRUE(sys.restart_node(victim));
  EXPECT_FALSE(sys.is_crashed(victim));
  ExecutionReplica& revived = sys.exec(g, 2);
  EXPECT_EQ(revived.executed_seq(), 0u);  // fresh process, empty state

  bool caught_up = drive::run_until(
      world, [&] { return revived.executed_seq() >= healthy; }, 30 * kSecond);
  EXPECT_TRUE(caught_up) << "revived replica stuck at seq " << revived.executed_seq()
                         << " (healthy: " << healthy << ")";
  EXPECT_GE(revived.catchups(), 1u);  // provably via checkpoint state transfer

  // The revived replica serves correct weak reads from recovered state...
  KvReply local = kv_decode_reply(revived.app().execute_weak(kv_get("burst29")));
  EXPECT_TRUE(local.ok);
  EXPECT_EQ(to_string(local.value), "x");
  // ...and end-to-end weak reads (which need fe+1 matching replies
  // including possibly the revived one) still work.
  drive::KvOutcome weak = drive::blocking_weak_read(world, *client, "warm");
  EXPECT_TRUE(weak.ok);
  EXPECT_EQ(to_string(weak.value), "1");
}

TEST(Recovery, RestartedAgreementReplicaRejoinsViewByEvidence) {
  World world(13);
  SpiderSystem sys(world, topo_small());
  auto client = sys.make_client(Site{Region::Virginia, 0});
  ASSERT_TRUE(drive::blocking_write(world, *client, "a", "1").ok);

  // Push the group to a higher view by cutting off the view-0 leader.
  FaultPlan plan(world);
  std::vector<NodeId> leader = {sys.agreement(0).id()};
  std::vector<NodeId> rest;
  for (std::size_t i = 1; i < sys.agreement_size(); ++i) rest.push_back(sys.agreement(i).id());
  plan.partition_nodes_at(world.now(), leader, rest, /*heal_after=*/6 * kSecond);
  ASSERT_TRUE(drive::blocking_write(world, *client, "b", "2").ok);
  ViewNr group_view = sys.agreement(1).consensus().view();
  ASSERT_GT(group_view, 0u);

  // Crash-recover a follower: the fresh process boots in view 0 and must
  // rejoin the group's view from f+1 authenticated traffic.
  NodeId victim = sys.agreement(2).id();
  ASSERT_TRUE(sys.crash_node(victim));
  ASSERT_TRUE(drive::blocking_write(world, *client, "c", "3").ok);
  ASSERT_TRUE(sys.restart_node(victim));
  EXPECT_EQ(sys.agreement(2).consensus().view(), 0u);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(drive::blocking_write(world, *client, "d" + std::to_string(i), "4").ok);
  }
  world.run_for(2 * kSecond);
  EXPECT_EQ(sys.agreement(2).consensus().view(), sys.agreement(1).consensus().view());
  EXPECT_GE(sys.agreement(2).consensus().views_adopted(), 1u);
}

TEST(Recovery, RestartedBftBaselineReplicaCatchesUp) {
  World world(14);
  BftConfig cfg;
  cfg.sites = geo_replica_sites(Region::Virginia, 4);
  cfg.checkpoint_interval = 8;
  cfg.request_timeout = kSecond;
  cfg.view_change_timeout = 2 * kSecond;
  BftSystem sys(world, cfg);
  auto client = sys.make_client(Site{Region::Virginia, 0});

  ASSERT_TRUE(drive::blocking_write(world, *client, "pre", "1").ok);
  NodeId victim = sys.replica_ids()[3];
  ASSERT_TRUE(sys.crash_node(victim));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(drive::blocking_write(world, *client, "k" + std::to_string(i), "v").ok);
  }
  SeqNr healthy = sys.replica(0).executed_seq();
  ASSERT_TRUE(sys.restart_node(victim));

  // Keep a little traffic flowing so checkpoints keep being generated.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(drive::blocking_write(world, *client, "post" + std::to_string(i), "v").ok);
  }
  bool caught_up = drive::run_until(
      world, [&] { return sys.replica(3).executed_seq() >= healthy; }, 30 * kSecond);
  EXPECT_TRUE(caught_up) << "bft replica stuck at " << sys.replica(3).executed_seq()
                         << " (healthy " << healthy << ")";
  KvReply local = kv_decode_reply(sys.replica(3).app().execute_weak(kv_get("pre")));
  EXPECT_TRUE(local.ok);
}

TEST(Recovery, RestartBeforeFirstCheckpointRecoversViaOnDemandCheckpoint) {
  // The hard case for crash recovery: the replica crashes before any
  // interval checkpoint was generated AND no further client traffic
  // arrives after the restart. Without checkpoint-on-demand the fresh
  // process would fetch forever (peers have nothing stable) and stay
  // empty; with it, the recovering fetch makes f+1 quiescent peers
  // snapshot their current state.
  World world(15);
  BftConfig cfg;
  cfg.sites = geo_replica_sites(Region::Virginia, 4);
  cfg.checkpoint_interval = 64;  // far beyond this test's traffic
  BftSystem sys(world, cfg);
  auto client = sys.make_client(Site{Region::Virginia, 0});

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(drive::blocking_write(world, *client, "k" + std::to_string(i), "v").ok);
  }
  NodeId victim = sys.replica_ids()[2];
  ASSERT_TRUE(sys.crash_node(victim));
  ASSERT_TRUE(drive::blocking_write(world, *client, "while-down", "w").ok);
  SeqNr healthy = sys.replica(0).executed_seq();
  ASSERT_TRUE(sys.restart_node(victim));

  // No writes from here on: recovery must be driven by the fetch alone.
  bool caught_up = drive::run_until(
      world, [&] { return sys.replica(2).executed_seq() >= healthy; }, 30 * kSecond);
  EXPECT_TRUE(caught_up) << "stuck at " << sys.replica(2).executed_seq() << " vs " << healthy;
  KvReply local = kv_decode_reply(sys.replica(2).app().execute_weak(kv_get("while-down")));
  EXPECT_TRUE(local.ok);
  EXPECT_EQ(to_string(local.value), "w");
}

// ---------------------------------------------------------------------------
// Byzantine primaries. A muted (fail-silent, here fully isolated via
// mute_rx) or equivocating view-0 primary must trigger a view change
// within the request timeout, after which the in-flight writes commit
// exactly once — no request is lost, none executes twice.
// ---------------------------------------------------------------------------

void run_byzantine_primary_case(std::uint64_t seed, const ByzantineFlags& primary_flags,
                                SeqNr max_null_slack) {
  World world(seed);
  SpiderTopology topo = topo_small();
  SpiderSystem sys(world, topo);
  HistoryRecorder hist(world);
  auto client = sys.make_client(Site{Region::Virginia, 0});
  GroupId va = client->group().group;

  // Warm write under an honest primary, so the Byzantine window starts
  // from a known sequence number.
  ASSERT_TRUE(drive::blocking_write(world, *client, "warm", "w").ok);
  SeqNr seq_before = sys.exec(va, 0).executed_seq();

  ASSERT_TRUE(sys.set_byzantine(sys.agreement(0).id(), primary_flags));

  std::vector<std::unique_ptr<SpiderClient>> writers;
  for (int i = 0; i < 4; ++i) {
    writers.push_back(sys.make_client(Site{Region::Virginia, 0}));
    recorded_put(hist, *writers.back(), static_cast<std::uint64_t>(i), "k" + std::to_string(i),
                 "v" + std::to_string(i));
  }

  // 30s >> request_timeout + view_change_timeout: completion inside the
  // deadline certifies the view change fired within its timeout.
  bool all_done = drive::run_until(world, [&] { return hist.pending_count() == 0; },
                                   30 * kSecond);
  EXPECT_TRUE(all_done) << hist.dump();

  // The Byzantine primary forced a view change...
  EXPECT_GT(sys.agreement(1).consensus().view(), 0u);

  // ...and every write committed exactly once: all values present, the
  // history linearizable, and the executed-sequence budget spent only on
  // the 4 writes (equivocation may burn up to `max_null_slack` null
  // instances for the contested slots — nulls consume sequence numbers
  // but execute nothing).
  for (int i = 0; i < 4; ++i) {
    drive::KvOutcome r = drive::blocking_strong_read(world, *client, "k" + std::to_string(i));
    EXPECT_TRUE(r.ok) << "k" << i;
    EXPECT_EQ(to_string(r.value), "v" + std::to_string(i));
  }
  LinResult lin = check_kv_history(hist);
  EXPECT_TRUE(lin.ok) << lin.error << "\n" << hist.dump();

  world.run_for(2 * kSecond);
  SeqNr after = sys.exec(va, 0).executed_seq();
  EXPECT_GE(after, seq_before + 4 + 4);  // 4 writes + 4 strong reads
  EXPECT_LE(after, seq_before + 4 + 4 + max_null_slack);

  // No residual re-proposals: one more write consumes exactly one slot.
  EXPECT_TRUE(drive::blocking_write(world, *client, "extra", "x").ok);
  EXPECT_EQ(sys.exec(va, 0).executed_seq(), after + 1);
}

TEST(Recovery, MutedPrimaryTriggersViewChangeAndCommitsExactlyOnce) {
  ByzantineFlags f;
  f.mute = true;
  f.mute_rx = true;  // fully isolated: neither proposes nor follows
  run_byzantine_primary_case(16, f, /*max_null_slack=*/0);
}

TEST(Recovery, EquivocatingPrimaryTriggersViewChangeAndCommitsExactlyOnce) {
  ByzantineFlags f;
  f.equivocate = true;
  // Each contested instance may be resolved as a null request before the
  // honest view re-proposes the write.
  run_byzantine_primary_case(17, f, /*max_null_slack=*/8);
}

// ---------------------------------------------------------------------------
// Scripted acceptance scenario: crash the agreement leader at t1, partition
// an execution site at t2, restart/heal both at t3. All client writes stay
// linearizable, the restarted replicas provably catch up via checkpoint
// state transfer, and the whole run is byte-identical across two
// executions with the same seed.
// ---------------------------------------------------------------------------

struct ScriptedResult {
  Bytes history;
  bool all_completed = false;
  bool lin_ok = false;
  std::string lin_err;
  std::uint64_t exec_catchups = 0;
  ViewNr final_view = 0;
  bool views_converged = false;
  bool execs_converged = false;
};

ScriptedResult run_scripted(std::uint64_t seed) {
  World world(seed);
  SpiderTopology topo = topo_small();
  // Tight commit window (ke + max_batch is the liveness floor): the 6s
  // execution-site partition pushes it past the stalled site, so recovery
  // *must* go through checkpoint state transfer (commit-channel replay
  // cannot bridge the gap).
  topo.commit_capacity = 9;
  SpiderSystem sys(world, topo);
  HistoryRecorder hist(world);

  auto c0 = sys.make_client(Site{Region::Virginia, 0});
  auto c1 = sys.make_client(Site{Region::Tokyo, 0});
  auto c2 = sys.make_client(Site{Region::Oregon, 0});

  FaultPlan plan(world);
  plan.on_crash = [&sys](NodeId n) { sys.crash_node(n); };
  plan.on_restart = [&sys](NodeId n) { sys.restart_node(n); };

  const Time t1 = 2 * kSecond, t2 = 4 * kSecond, t3 = 10 * kSecond;
  NodeId leader = sys.agreement(0).id();
  plan.crash_at(t1, leader);

  // Partition one execution *site* (one AZ = one replica of the Tokyo
  // group). Its group keeps committing — the other 2fe replicas carry the
  // quorums — and the commit window moves past the cut-off replica, so
  // after the heal it can only rejoin through checkpoint state transfer.
  // (Partitioning a whole group would never need fetch_cp: with z = 0 the
  // global flow control stops the system within one commit window of it.)
  GroupId tokyo = sys.nearest_group(Region::Tokyo);
  NodeId lagger = sys.exec(tokyo, 2).id();
  std::vector<NodeId> everyone_else;
  for (NodeId n : sys.replica_ids()) {
    if (n != lagger) everyone_else.push_back(n);
  }
  plan.partition_nodes_at(t2, {lagger}, everyone_else, /*heal_after=*/t3 - t2);
  plan.restart_at(t3, leader);

  std::vector<chaos::ClientHandle> handles = {
      chaos::ClientHandle::wrap(hist, *c0, 0),
      chaos::ClientHandle::wrap(hist, *c1, 1),
      chaos::ClientHandle::wrap(hist, *c2, 2),
  };
  chaos::WorkloadOptions opt;
  opt.ops_per_client = 16;
  opt.mean_gap = 400 * kMillisecond;
  std::vector<std::string> keys = chaos::key_pool(4);
  chaos::schedule_workload(world, handles, keys, opt);

  world.run_until(t3 + kSecond);
  ScriptedResult res;
  res.all_completed = drive::run_until(
      world, [&] { return hist.pending_count() == 0; }, 90 * kSecond);

  // Final strong reads prove no acknowledged write was lost.
  for (const std::string& k : keys) recorded_strong_get(hist, *c0, 99, k);
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 60 * kSecond);
  res.all_completed = res.all_completed && hist.pending_count() == 0;

  // Let checkpoints propagate, then measure convergence.
  world.run_for(5 * kSecond);
  LinResult lin = check_kv_history(hist);
  res.lin_ok = lin.ok;
  res.lin_err = lin.error;
  res.history = hist.serialize();
  for (std::size_t i = 0; i < sys.group_size(tokyo); ++i) {
    res.exec_catchups += sys.exec(tokyo, i).catchups();
  }
  res.final_view = sys.agreement(1).consensus().view();
  res.views_converged = true;
  for (std::size_t i = 0; i < sys.agreement_size(); ++i) {
    if (sys.agreement(i).consensus().view() != res.final_view) res.views_converged = false;
  }
  SeqNr ref = sys.exec(sys.nearest_group(Region::Virginia), 0).executed_seq();
  res.execs_converged = true;
  for (GroupId g : sys.group_ids()) {
    for (std::size_t i = 0; i < sys.group_size(g); ++i) {
      if (sys.exec(g, i).executed_seq() != ref) res.execs_converged = false;
    }
  }
  return res;
}

TEST(Recovery, ScriptedCrashPartitionRestartScenario) {
  ScriptedResult res = run_scripted(2026);
  EXPECT_TRUE(res.all_completed);
  EXPECT_TRUE(res.lin_ok) << res.lin_err;
  EXPECT_GT(res.final_view, 0u);        // the leader crash forced a view change
  EXPECT_TRUE(res.views_converged);     // including the restarted leader
  EXPECT_GE(res.exec_catchups, 1u);     // partitioned site recovered via checkpoints
  EXPECT_TRUE(res.execs_converged);
}

TEST(Recovery, ScriptedScenarioIsByteIdenticalAcrossRuns) {
  ScriptedResult a = run_scripted(2026);
  ScriptedResult b = run_scripted(2026);
  EXPECT_EQ(a.history, b.history);
  EXPECT_FALSE(a.history.empty());
  ScriptedResult c = run_scripted(2027);
  EXPECT_NE(c.history, a.history);  // the seed genuinely drives the run
}

}  // namespace
}  // namespace spider
