#include <gtest/gtest.h>

#include "crypto/provider.hpp"

namespace spider {
namespace {

// Both providers must satisfy the same contract; run the suite over each.
class ProviderSuite : public ::testing::TestWithParam<bool /*real*/> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      provider_ = std::make_unique<RealCrypto>(7, 512);
    } else {
      provider_ = std::make_unique<FastCrypto>(7);
    }
  }
  std::unique_ptr<CryptoProvider> provider_;
};

TEST_P(ProviderSuite, SignVerify) {
  Bytes msg = to_bytes(std::string("hello"));
  Bytes sig = provider_->sign(1, msg);
  EXPECT_EQ(sig.size(), provider_->signature_size());
  EXPECT_TRUE(provider_->verify(1, msg, sig));
}

TEST_P(ProviderSuite, VerifyRejectsWrongSigner) {
  Bytes msg = to_bytes(std::string("hello"));
  Bytes sig = provider_->sign(1, msg);
  EXPECT_FALSE(provider_->verify(2, msg, sig));
}

TEST_P(ProviderSuite, VerifyRejectsTamperedMessage) {
  Bytes msg = to_bytes(std::string("hello"));
  Bytes sig = provider_->sign(1, msg);
  Bytes other = to_bytes(std::string("hellO"));
  EXPECT_FALSE(provider_->verify(1, other, sig));
}

TEST_P(ProviderSuite, VerifyRejectsTamperedSignature) {
  Bytes msg = to_bytes(std::string("hello"));
  Bytes sig = provider_->sign(1, msg);
  sig[0] ^= 0xff;
  EXPECT_FALSE(provider_->verify(1, msg, sig));
}

TEST_P(ProviderSuite, MacRoundTrip) {
  Bytes msg = to_bytes(std::string("macme"));
  Bytes tag = provider_->mac(1, 2, msg);
  EXPECT_EQ(tag.size(), provider_->mac_size());
  EXPECT_TRUE(provider_->verify_mac(1, 2, msg, tag));
  // MAC keys are pairwise symmetric: the reverse direction verifies too.
  EXPECT_TRUE(provider_->verify_mac(2, 1, msg, tag));
}

TEST_P(ProviderSuite, MacRejectsOtherPair) {
  Bytes msg = to_bytes(std::string("macme"));
  Bytes tag = provider_->mac(1, 2, msg);
  EXPECT_FALSE(provider_->verify_mac(1, 3, msg, tag));
}

TEST_P(ProviderSuite, MacRejectsTamper) {
  Bytes msg = to_bytes(std::string("macme"));
  Bytes tag = provider_->mac(1, 2, msg);
  Bytes other = to_bytes(std::string("macmE"));
  EXPECT_FALSE(provider_->verify_mac(1, 2, other, tag));
  tag[3] ^= 1;
  EXPECT_FALSE(provider_->verify_mac(1, 2, msg, tag));
}

TEST_P(ProviderSuite, CostsPositive) {
  const CryptoCosts& c = provider_->costs();
  EXPECT_GT(c.sign, 0);
  EXPECT_GT(c.verify, 0);
  EXPECT_GT(c.mac, 0);
  EXPECT_GT(c.sign, c.verify);  // RSA asymmetry the evaluation relies on
  EXPECT_GT(c.verify, c.mac);
}

INSTANTIATE_TEST_SUITE_P(Providers, ProviderSuite, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "RealCrypto" : "FastCrypto";
                         });

TEST(FastCrypto, SignatureSizeMatchesRsa1024) {
  FastCrypto fc(1);
  EXPECT_EQ(fc.signature_size(), 128u);  // RSA-1024 signature bytes
}

TEST(RealCrypto, PublicKeyStableAcrossCalls) {
  RealCrypto rc(11, 512);
  const RsaPublicKey& a = rc.public_key(5);
  const RsaPublicKey& b = rc.public_key(5);
  EXPECT_EQ(BigInt::cmp(a.n, b.n), 0);
}

TEST(RealCrypto, DistinctNodesDistinctKeys) {
  RealCrypto rc(11, 512);
  EXPECT_NE(BigInt::cmp(rc.public_key(1).n, rc.public_key(2).n), 0);
}

}  // namespace
}  // namespace spider
