#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "spider/system.hpp"

namespace spider {
namespace {

/// Small intervals/capacities so checkpoint and flow-control paths are
/// exercised quickly.
SpiderTopology test_topology(std::vector<Region> regions = {Region::Virginia, Region::Oregon,
                                                            Region::Ireland, Region::Tokyo}) {
  SpiderTopology t;
  t.exec_regions = std::move(regions);
  t.ka = 4;
  t.ke = 4;
  t.ag_win = 16;
  t.commit_capacity = 8;
  t.request_timeout = kSecond;
  t.view_change_timeout = 2 * kSecond;
  t.client_retry = kSecond;
  return t;
}

struct Fixture {
  World world;
  SpiderSystem sys;

  explicit Fixture(SpiderTopology topo = test_topology(), std::uint64_t seed = 1)
      : world(seed), sys(world, std::move(topo)) {}

  /// Runs a blocking write and returns (result, latency).
  std::pair<KvReply, Duration> do_write(SpiderClient& c, const std::string& key,
                                        const std::string& value,
                                        Duration timeout = 10 * kSecond) {
    KvReply out;
    Duration lat = -1;
    c.write(kv_put(key, to_bytes(value)), [&](Bytes result, Duration l) {
      out = kv_decode_reply(result);
      lat = l;
    });
    Time deadline = world.now() + timeout;
    while (lat < 0 && world.now() < deadline) world.queue().run_next();
    return {out, lat};
  }

  std::pair<KvReply, Duration> do_strong_read(SpiderClient& c, const std::string& key,
                                              Duration timeout = 10 * kSecond) {
    KvReply out;
    Duration lat = -1;
    c.strong_read(kv_get(key), [&](Bytes result, Duration l) {
      out = kv_decode_reply(result);
      lat = l;
    });
    Time deadline = world.now() + timeout;
    while (lat < 0 && world.now() < deadline) world.queue().run_next();
    return {out, lat};
  }

  std::pair<KvReply, Duration> do_weak_read(SpiderClient& c, const std::string& key,
                                            Duration timeout = 10 * kSecond) {
    KvReply out;
    Duration lat = -1;
    c.weak_read(kv_get(key), [&](Bytes result, Duration l) {
      out = kv_decode_reply(result);
      lat = l;
    });
    Time deadline = world.now() + timeout;
    while (lat < 0 && world.now() < deadline) world.queue().run_next();
    return {out, lat};
  }
};

TEST(Spider, WriteCompletesFromLocalRegion) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  auto [reply, lat] = f.do_write(*client, "k", "v");
  EXPECT_TRUE(reply.ok);
  EXPECT_GT(lat, 0);
  // Virginia clients sit next to the agreement group: writes take a few ms
  // (paper: ~13 ms on EC2), no wide-area hop involved.
  EXPECT_LT(lat, 30 * kMillisecond);
}

TEST(Spider, WriteFromRemoteRegionTakesOneWanRoundTrip) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Tokyo, 0});
  auto [reply, lat] = f.do_write(*client, "k", "v");
  EXPECT_TRUE(reply.ok);
  // One WAN round trip Tokyo<->Virginia (156 ms RTT) plus regional work.
  EXPECT_GT(lat, 150 * kMillisecond);
  EXPECT_LT(lat, 220 * kMillisecond);
}

TEST(Spider, WritePropagatesToAllGroups) {
  Fixture f;
  auto writer = f.sys.make_client(Site{Region::Virginia, 0});
  auto [reply, lat] = f.do_write(*writer, "shared", "hello");
  ASSERT_TRUE(reply.ok);
  f.world.run_for(kSecond);  // let commit channels drain everywhere

  for (GroupId g : f.sys.group_ids()) {
    for (std::size_t i = 0; i < f.sys.group_size(g); ++i) {
      const auto& app = f.sys.exec(g, i).app();
      KvReply r = kv_decode_reply(app.execute_readonly(kv_get("shared")));
      EXPECT_TRUE(r.ok) << "group " << g << " replica " << i;
      EXPECT_EQ(to_string(r.value), "hello");
    }
  }
}

TEST(Spider, SequentialWritesAllSucceed) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Oregon, 0});
  for (int i = 0; i < 10; ++i) {
    auto [reply, lat] = f.do_write(*client, "k" + std::to_string(i), "v" + std::to_string(i));
    ASSERT_TRUE(reply.ok) << i;
  }
  EXPECT_EQ(client->retries(), 0u);
}

TEST(Spider, StrongReadSeesPrecedingWrite) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Ireland, 0});
  ASSERT_TRUE(f.do_write(*client, "x", "42").first.ok);
  auto [reply, lat] = f.do_strong_read(*client, "x");
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(to_string(reply.value), "42");
}

TEST(Spider, StrongReadFromSecondClientLinearizes) {
  Fixture f;
  auto writer = f.sys.make_client(Site{Region::Virginia, 0});
  auto reader = f.sys.make_client(Site{Region::Tokyo, 0});
  ASSERT_TRUE(f.do_write(*writer, "x", "1").first.ok);
  ASSERT_TRUE(f.do_write(*writer, "x", "2").first.ok);
  // Strong read is ordered after both writes -> must see "2" (E-Safety II).
  auto [reply, lat] = f.do_strong_read(*reader, "x");
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(to_string(reply.value), "2");
}

TEST(Spider, WeakReadIsLocalAndFast) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Tokyo, 0});
  auto [reply, lat] = f.do_weak_read(*client, "nokey");
  EXPECT_FALSE(reply.ok);  // key absent, but read completes
  EXPECT_LT(lat, 5 * kMillisecond);  // paper: <= 2 ms, no WAN hop
}

TEST(Spider, WeakReadEventuallySeesRemoteWrite) {
  Fixture f;
  auto writer = f.sys.make_client(Site{Region::Virginia, 0});
  auto reader = f.sys.make_client(Site{Region::Tokyo, 0});
  ASSERT_TRUE(f.do_write(*writer, "geo", "ok").first.ok);
  f.world.run_for(kSecond);  // commit channel propagation to Tokyo
  auto [reply, lat] = f.do_weak_read(*reader, "geo");
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(to_string(reply.value), "ok");
}

TEST(Spider, VirginiaWritesFarFasterThanTokyo) {
  Fixture f;
  auto va = f.sys.make_client(Site{Region::Virginia, 0});
  auto tk = f.sys.make_client(Site{Region::Tokyo, 0});
  auto [r1, lat_va] = f.do_write(*va, "a", "1");
  auto [r2, lat_tk] = f.do_write(*tk, "b", "2");
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_LT(lat_va * 5, lat_tk);  // paper Fig. 7: up to 95% lower latency
}

TEST(Spider, ByzantineReplicaRepliesOutvoted) {
  Fixture f;
  GroupId g = f.sys.nearest_group(Region::Oregon);
  f.sys.exec(g, 0).corrupt_replies = true;  // 1 of 3 corrupts results
  auto client = f.sys.make_client(Site{Region::Oregon, 0});
  auto [reply, lat] = f.do_write(*client, "k", "v");
  EXPECT_TRUE(reply.ok);  // fe+1 = 2 correct replies outvote the corruption
  auto [read, rlat] = f.do_weak_read(*client, "k");
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(to_string(read.value), "v");
}

TEST(Spider, ByzantineReplicaDroppingForwardsHarmless) {
  Fixture f;
  GroupId g = f.sys.nearest_group(Region::Ireland);
  f.sys.exec(g, 1).drop_forwarding = true;
  auto client = f.sys.make_client(Site{Region::Ireland, 0});
  auto [reply, lat] = f.do_write(*client, "k", "v");
  EXPECT_TRUE(reply.ok);  // fe+1 remaining correct replicas form the quorum
}

TEST(Spider, CrashedExecutionReplicaTolerated) {
  Fixture f;
  GroupId g = f.sys.nearest_group(Region::Tokyo);
  f.world.net().set_node_down(f.sys.exec(g, 2).id(), true);
  auto client = f.sys.make_client(Site{Region::Tokyo, 0});
  EXPECT_TRUE(f.do_write(*client, "k", "v").first.ok);
  EXPECT_TRUE(f.do_weak_read(*client, "k").first.ok);
}

TEST(Spider, CrashedAgreementFollowerTolerated) {
  Fixture f;
  f.world.net().set_node_down(f.sys.agreement(3).id(), true);
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  EXPECT_TRUE(f.do_write(*client, "k", "v").first.ok);
}

TEST(Spider, CrashedAgreementLeaderRecoveredByViewChange) {
  Fixture f;
  f.world.net().set_node_down(f.sys.agreement(0).id(), true);  // view-0 primary
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  auto [reply, lat] = f.do_write(*client, "k", "v", 30 * kSecond);
  EXPECT_TRUE(reply.ok);
  EXPECT_GE(f.sys.agreement(1).consensus().view(), 1u);
  // Subsequent writes are fast again (leader change is intra-region).
  auto [r2, lat2] = f.do_write(*client, "k2", "v2");
  EXPECT_TRUE(r2.ok);
  EXPECT_LT(lat2, 50 * kMillisecond);
}

TEST(Spider, LaggingExecutionReplicaCatchesUpViaCheckpoint) {
  Fixture f;
  GroupId g = f.sys.nearest_group(Region::Virginia);
  NodeId lagger = f.sys.exec(g, 2).id();
  f.world.net().set_node_down(lagger, true);

  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  for (int i = 0; i < 30; ++i) {  // far beyond commit capacity (8)
    ASSERT_TRUE(f.do_write(*client, "k" + std::to_string(i), "v").first.ok);
  }
  SeqNr healthy_seq = f.sys.exec(g, 0).executed_seq();
  EXPECT_LT(f.sys.exec(g, 2).executed_seq(), healthy_seq);

  f.world.net().set_node_down(lagger, false);
  // Another write nudges the pipeline; checkpoint fetch closes the gap.
  ASSERT_TRUE(f.do_write(*client, "post", "v").first.ok);
  f.world.run_for(5 * kSecond);
  EXPECT_GE(f.sys.exec(g, 2).executed_seq(), healthy_seq);
  EXPECT_GE(f.sys.exec(g, 2).catchups(), 1u);
  KvReply r = kv_decode_reply(f.sys.exec(g, 2).app().execute_readonly(kv_get("k0")));
  EXPECT_TRUE(r.ok);
}

TEST(Spider, TrailingGroupSkippedWithZ) {
  SpiderTopology topo = test_topology();
  topo.z = 1;  // tolerate one trailing execution group
  Fixture f(topo);

  // Kill the whole Tokyo group.
  GroupId tokyo = f.sys.nearest_group(Region::Tokyo);
  for (std::size_t i = 0; i < f.sys.group_size(tokyo); ++i) {
    f.world.net().set_node_down(f.sys.exec(tokyo, i).id(), true);
  }

  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  for (int i = 0; i < 30; ++i) {
    auto [reply, lat] = f.do_write(*client, "k" + std::to_string(i), "v");
    ASSERT_TRUE(reply.ok) << "write " << i << " stalled behind dead group";
  }

  // Revive Tokyo: it fell behind the commit window and must recover via a
  // cross-group execution checkpoint (paper §3.5).
  for (std::size_t i = 0; i < f.sys.group_size(tokyo); ++i) {
    f.world.net().set_node_down(f.sys.exec(tokyo, i).id(), false);
  }
  ASSERT_TRUE(f.do_write(*client, "post", "v").first.ok);
  f.world.run_for(10 * kSecond);
  SeqNr healthy = f.sys.exec(f.sys.nearest_group(Region::Virginia), 0).executed_seq();
  EXPECT_GE(f.sys.exec(tokyo, 0).executed_seq() + 2, healthy);
}

TEST(Spider, AddGroupAtRuntime) {
  Fixture f(test_topology({Region::Virginia, Region::Oregon}));
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  ASSERT_TRUE(f.do_write(*client, "before", "1").first.ok);

  bool added = false;
  GroupId sp = f.sys.add_group(Region::SaoPaulo, [&] { added = true; });
  Time deadline = f.world.now() + 30 * kSecond;
  while (!added && f.world.now() < deadline) f.world.queue().run_next();
  ASSERT_TRUE(added);
  EXPECT_EQ(f.sys.agreement(0).group_count(), 3u);

  // Drive a write so the new group receives Executes/checkpoints, then a
  // local client in Sao Paulo can use the new group.
  ASSERT_TRUE(f.do_write(*client, "after", "2").first.ok);
  f.world.run_for(10 * kSecond);

  auto sp_client = f.sys.make_client(Site{Region::SaoPaulo, 0});
  EXPECT_EQ(sp_client->group().group, sp);
  auto [w, wl] = f.do_write(*sp_client, "sp", "3");
  EXPECT_TRUE(w.ok);
  auto [rd, rl] = f.do_weak_read(*sp_client, "before");
  EXPECT_TRUE(rd.ok);  // caught up with pre-join state via checkpoint
  EXPECT_EQ(to_string(rd.value), "1");
  EXPECT_LT(rl, 5 * kMillisecond);  // local weak reads (paper Fig. 10b)
}

TEST(Spider, RemoveGroupAtRuntime) {
  Fixture f;
  GroupId tokyo = f.sys.nearest_group(Region::Tokyo);
  bool removed = false;
  f.sys.remove_group(tokyo, [&] { removed = true; });
  Time deadline = f.world.now() + 30 * kSecond;
  while (!removed && f.world.now() < deadline) f.world.queue().run_next();
  ASSERT_TRUE(removed);
  EXPECT_EQ(f.sys.agreement(0).group_count(), 3u);

  // Remaining groups keep working.
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  EXPECT_TRUE(f.do_write(*client, "still", "works").first.ok);
}

TEST(Spider, FaultyClientConflictingRequestsContained) {
  Fixture f;
  GroupId g = f.sys.nearest_group(Region::Virginia);
  ClientGroupInfo info = f.sys.group_info(g);

  // A Byzantine "client" sends a *different* signed request to each
  // execution replica for the same counter: no fe+1 quorum can form in its
  // request subchannel, so nothing is ordered — and correct clients are
  // unaffected (paper §3.7).
  ComponentHost evil(f.world, f.world.allocate_id(), Site{Region::Virginia, 0});
  for (std::size_t i = 0; i < info.members.size(); ++i) {
    ClientRequest req{OpKind::Write, evil.id(), 1,
                      kv_put("evil", to_bytes(std::string("v") + std::to_string(i)))};
    Writer dom;
    dom.u32(tags::kClient);
    dom.raw(req.encode());
    Bytes sig = f.world.crypto().sign(evil.id(), dom.data());
    Bytes frame = ClientFrame{req, sig}.encode();
    Writer w;
    w.u32(tags::kClient);
    w.raw(frame);
    Bytes mac = f.world.crypto().mac(evil.id(), info.members[i], w.data());
    Bytes wire = frame;
    wire.insert(wire.end(), mac.begin(), mac.end());
    Writer outer;
    outer.u32(tags::kClient);
    outer.raw(wire);
    evil.send_to(info.members[i], std::move(outer).take());
  }
  f.world.run_for(3 * kSecond);

  // The conflicting request never executed anywhere.
  KvReply r = kv_decode_reply(f.sys.exec(g, 0).app().execute_readonly(kv_get("evil")));
  EXPECT_FALSE(r.ok);

  // Correct clients proceed normally.
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  EXPECT_TRUE(f.do_write(*client, "good", "v").first.ok);
}

TEST(Spider, RegistryQueryListsGroups) {
  Fixture f;
  ComponentHost asker(f.world, f.world.allocate_id(), Site{Region::Virginia, 0});
  // Raw query to one agreement replica (clients would collect fa+1 matching).
  struct Capture : ComponentHost {
    using ComponentHost::ComponentHost;
    Bytes got;
    void on_message(NodeId, BytesView data) override { got = to_bytes(data); }
  };
  Capture cap(f.world, f.world.allocate_id(), Site{Region::Virginia, 0});
  Writer q;
  q.u32(tags::kRegistry);
  cap.send_to(f.sys.agreement(0).id(), std::move(q).take());
  f.world.run_for(kSecond);
  ASSERT_FALSE(cap.got.empty());
  Reader r(cap.got);
  ASSERT_EQ(r.u32(), tags::kRegistry);
  BytesView rest = r.raw(r.remaining());
  BytesView body = rest.subspan(0, rest.size() - f.world.crypto().mac_size());
  Reader br(body);
  RegistrySnapshot snap = RegistrySnapshot::decode(br);
  EXPECT_EQ(snap.groups.size(), 4u);
}

TEST(Spider, SenderCollectIrmcEndToEnd) {
  SpiderTopology topo = test_topology();
  topo.irmc_kind = IrmcKind::SenderCollect;
  Fixture f(topo);
  auto client = f.sys.make_client(Site{Region::Tokyo, 0});
  auto [reply, lat] = f.do_write(*client, "k", "v");
  EXPECT_TRUE(reply.ok);
  auto [read, rlat] = f.do_strong_read(*client, "k");
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(to_string(read.value), "v");
}

TEST(Spider, DeterministicAcrossRuns) {
  auto run = [] {
    Fixture f(test_topology(), 31337);
    auto client = f.sys.make_client(Site{Region::Ireland, 0});
    std::vector<Duration> lats;
    for (int i = 0; i < 3; ++i) {
      auto [reply, lat] = f.do_write(*client, "k" + std::to_string(i), "v");
      lats.push_back(lat);
    }
    return lats;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace spider
