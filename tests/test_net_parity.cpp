// Cross-backend parity: the same scripted KV workload runs through the
// full Spider stack (PBFT agreement + execution groups + client protocol)
// twice — once over the deterministic sim network, once over real loopback
// sockets (UDP weak reads + framed TCP ordered traffic, pumped by
// net::RealtimeDriver) — and both runs must
//
//   (a) pass the Wing–Gong linearizability checker, and
//   (b) produce identical client-visible results for every strong
//       operation (writes, deletes, strong reads).
//
// Weak reads ride the UDP fast path and are allowed bounded staleness
// (committed-prefix rule), so their observed values may legitimately
// differ between backends; the checker still validates each of them
// against its own history.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/kv_recorder.hpp"
#include "check/linearizer.hpp"
#include "net/loopback_transport.hpp"
#include "net/realtime.hpp"
#include "spider/system.hpp"

namespace spider {
namespace {

struct Deployment {
  // Declaration order is destruction-safety order: nodes (system/clients)
  // detach through world.transport() in their destructors, so the socket
  // transport and driver must outlive them.
  World world;
  std::unique_ptr<net::LoopbackTransport> sock;
  std::unique_ptr<net::RealtimeDriver> driver;
  std::unique_ptr<SpiderSystem> sys;
  std::vector<std::unique_ptr<SpiderClient>> clients;
  HistoryRecorder hist{world};

  explicit Deployment(bool loopback) : world(777) {
    if (loopback) {
      sock = std::make_unique<net::LoopbackTransport>();
      world.install_transport(sock.get());
      driver = std::make_unique<net::RealtimeDriver>(world, *sock);
    }
    SpiderTopology topo;
    topo.fa = 1;
    topo.fe = 1;
    topo.exec_regions = {Region::Virginia};
    sys = std::make_unique<SpiderSystem>(world, topo);
    clients.push_back(sys->make_client(Site{Region::Virginia, 0}));
    clients.push_back(sys->make_client(Site{Region::Virginia, 1}));
  }

  ~Deployment() {
    clients.clear();
    sys.reset();
    driver.reset();
  }

  /// Pumps in small virtual-time slices; with the realtime driver
  /// installed each slice also pumps the socket reactor, so the same loop
  /// drives both backends.
  bool pump_until(const std::function<bool()>& pred) {
    for (int i = 0; i < 4000 && !pred(); ++i) world.run_for(5 * kMillisecond);
    return pred();
  }
};

struct OpResult {
  bool done = false;
  bool ok = false;
  std::string value;
};

/// One blocking recorded operation; `issue` receives the client callback.
template <class Issue>
OpResult run_op(Deployment& d, Issue&& issue) {
  auto res = std::make_shared<OpResult>();
  issue([res, &hist = d.hist](HistoryRecorder::OpId id, Bytes reply) {
    KvReply r = kv_decode_reply(reply);
    res->ok = r.ok;
    res->value = to_string(r.value);
    hist.respond(id, r.ok, std::move(r.value));
    res->done = true;
  });
  EXPECT_TRUE(d.pump_until([res] { return res->done; })) << "operation never completed";
  return *res;
}

OpResult put(Deployment& d, std::size_t c, const std::string& key, const std::string& val) {
  return run_op(d, [&](auto&& cb) {
    HistoryRecorder::OpId id = d.hist.invoke(c + 1, HistOp::Put, key, to_bytes(val));
    d.clients[c]->write(kv_put(key, to_bytes(val)),
                        [cb, id](Bytes reply, Duration) { cb(id, std::move(reply)); });
  });
}

OpResult del(Deployment& d, std::size_t c, const std::string& key) {
  return run_op(d, [&](auto&& cb) {
    HistoryRecorder::OpId id = d.hist.invoke(c + 1, HistOp::Del, key);
    d.clients[c]->write(kv_del(key),
                        [cb, id](Bytes reply, Duration) { cb(id, std::move(reply)); });
  });
}

OpResult strong_get(Deployment& d, std::size_t c, const std::string& key) {
  return run_op(d, [&](auto&& cb) {
    HistoryRecorder::OpId id = d.hist.invoke(c + 1, HistOp::StrongGet, key);
    d.clients[c]->strong_read(kv_get(key),
                              [cb, id](Bytes reply, Duration) { cb(id, std::move(reply)); });
  });
}

OpResult weak_get(Deployment& d, std::size_t c, const std::string& key) {
  return run_op(d, [&](auto&& cb) {
    HistoryRecorder::OpId id = d.hist.invoke(c + 1, HistOp::WeakGet, key);
    d.clients[c]->weak_read(kv_get(key),
                            [cb, id](Bytes reply, Duration) { cb(id, std::move(reply)); });
  });
}

std::string visible(const std::string& op, const OpResult& r) {
  return op + (r.ok ? ":ok:" : ":fail:") + r.value;
}

/// The scripted workload. Returns the client-visible result of every
/// strong operation, in issue order; weak reads are recorded in the
/// history (and checked) but excluded from the cross-backend comparison.
std::vector<std::string> run_workload(Deployment& d) {
  std::vector<std::string> out;
  out.push_back(visible("put-x", put(d, 0, "x", "v1")));
  out.push_back(visible("get-x", strong_get(d, 1, "x")));
  out.push_back(visible("put-y", put(d, 1, "y", "w1")));
  weak_get(d, 0, "x");
  out.push_back(visible("put-x", put(d, 1, "x", "v2")));
  out.push_back(visible("get-x", strong_get(d, 0, "x")));
  out.push_back(visible("get-y", strong_get(d, 0, "y")));
  weak_get(d, 1, "y");
  out.push_back(visible("del-y", del(d, 0, "y")));
  out.push_back(visible("get-y", strong_get(d, 1, "y")));
  for (int i = 0; i < 5; ++i) {
    const std::string v = "round" + std::to_string(i);
    out.push_back(visible("put-x", put(d, i % 2, "x", v)));
    out.push_back(visible("get-x", strong_get(d, (i + 1) % 2, "x")));
    weak_get(d, i % 2, "x");
  }
  out.push_back(visible("get-x", strong_get(d, 0, "x")));
  return out;
}

TEST(NetParity, SimAndLoopbackAgreeOnClientVisibleResults) {
  Deployment sim(/*loopback=*/false);
  std::vector<std::string> sim_visible = run_workload(sim);
  LinResult sim_lin = check_kv_history(sim.hist);
  EXPECT_TRUE(sim_lin.ok) << "sim history not linearizable: " << sim_lin.error;

  Deployment loop(/*loopback=*/true);
  std::vector<std::string> loop_visible = run_workload(loop);
  LinResult loop_lin = check_kv_history(loop.hist);
  EXPECT_TRUE(loop_lin.ok) << "loopback history not linearizable: " << loop_lin.error;

  EXPECT_EQ(sim_visible, loop_visible)
      << "strong-operation results must not depend on the transport backend";

  // The loopback run really used sockets on both channels.
  ASSERT_NE(loop.sock, nullptr);
  EXPECT_GT(loop.sock->counters().tcp_frames_received, 0u)
      << "ordered traffic never crossed the TCP path";
  EXPECT_GT(loop.sock->counters().udp_datagrams_received, 0u)
      << "weak reads never crossed the UDP path";
}

}  // namespace
}  // namespace spider
