// Flight recorder demo: a Spider deployment serving a small mixed workload
// with full tracing attached, exporting
//
//   traced_run.json      — Chrome trace-event / Perfetto timeline of every
//                          request's lifecycle (submit -> pre-prepare ->
//                          prepare -> commit -> IRMC -> execute -> reply),
//                          one track per replica, plus modeled-CPU slices;
//   traced_run_metrics.json — JSON-lines metrics snapshot (counters,
//                          gauges, latency histograms with p50/p99/p999).
//
// Open the trace at https://ui.perfetto.dev or chrome://tracing. Rerun with
// the same seed and both files are byte-identical — tracing is out-of-band
// and the simulation is deterministic.
//
//   $ ./example_traced_run [seed]
#include <cstdio>
#include <cstdlib>

#include "obs/trace_export.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

using namespace spider;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  World world(seed);
  obs::Tracer& tracer = world.enable_tracing(obs::Tracer::Mode::kFull);

  SpiderTopology topo;
  topo.exec_regions = {Region::Virginia, Region::Ireland};
  SpiderSystem sys(world, topo);

  auto va = sys.make_client(Site{Region::Virginia, 0});
  auto ie = sys.make_client(Site{Region::Ireland, 1});

  int replies = 0;
  auto count = [&replies](Bytes, Duration) { ++replies; };
  for (int i = 0; i < 8; ++i) {
    const std::string key = "k" + std::to_string(i % 3);
    va->write(kv_put(key, Bytes(64, 0x42)), count);
    if (i % 2 == 0) {
      ie->weak_read(kv_get(key), count);
    } else {
      ie->write(kv_put(key, Bytes(64, 0x24)), count);
    }
  }
  world.run_for(30 * kSecond);

  world.refresh_platform_metrics();
  const bool trace_ok = obs::write_chrome_trace(tracer, "traced_run.json");
  const bool metrics_ok = world.metrics().write_snapshot("traced_run_metrics.json");

  std::printf("seed %llu: %d replies, %zu trace events\n",
              static_cast<unsigned long long>(seed), replies, tracer.size());
  std::printf("  trace:   traced_run.json %s (open in ui.perfetto.dev)\n",
              trace_ok ? "written" : "FAILED");
  std::printf("  metrics: traced_run_metrics.json %s\n", metrics_ok ? "written" : "FAILED");
  return trace_ok && metrics_ok && replies == 16 ? 0 : 1;
}
