// Sharded geo-replicated KV store: the keyspace is hash-partitioned over
// four independent Spider cores (one agreement group each), composed
// behind ShardedClient routers. Clients in four regions issue a mixed
// workload — routed writes, local weak reads, and one cross-shard MGET —
// mirroring examples/geo_kvstore.cpp on the sharded deployment.
//
//   $ ./examples/example_sharded_kvstore
#include <cstdio>
#include <map>

#include "shard/sharded_system.hpp"
#include "sim/stats.hpp"
#include "sim/world.hpp"

using namespace spider;

int main() {
  const std::vector<Region> regions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                       Region::Tokyo};
  World world(7);
  ShardedTopology topo;  // 4 shards, each a full default Spider deployment
  ShardedSpiderSystem sys(world, topo);

  std::printf("Sharded Spider: %u cores, agreement groups all in %s,\n"
              "execution groups in 4 regions per core\n\n",
              sys.shard_count(), region_name(topo.base.agreement_region));

  // Mixed read/write workload, 3 routed clients per region.
  struct Ctx {
    std::unique_ptr<ShardedClient> client;
    Region region;
    int remaining = 20;
  };
  std::vector<std::shared_ptr<Ctx>> ctxs;
  std::map<Region, LatencyStats> writes, reads;
  for (Region r : regions) {
    for (int i = 0; i < 3; ++i) {
      auto ctx = std::make_shared<Ctx>();
      ctx->client = sys.make_client(Site{r, static_cast<std::uint8_t>(i)});
      ctx->region = r;
      ctxs.push_back(ctx);
    }
  }
  std::function<void(std::shared_ptr<Ctx>)> step = [&](std::shared_ptr<Ctx> ctx) {
    if (ctx->remaining-- <= 0) return;
    // Distinct keys per step hash across all four shards.
    std::string key = "key-" + std::to_string(ctx->client->shard_client(0).id()) + "-" +
                      std::to_string(ctx->remaining % 4);
    if (ctx->remaining % 2 == 0) {
      ctx->client->put(key, Bytes(160, 0x42), [&, ctx](Bytes, Duration lat) {
        writes[ctx->region].add(lat);
        step(ctx);
      });
    } else {
      ctx->client->weak_get(key, [&, ctx](Bytes, Duration lat) {
        reads[ctx->region].add(lat);
        step(ctx);
      });
    }
  };
  for (auto& ctx : ctxs) step(ctx);
  world.run_for(120 * kSecond);

  std::printf("  %-10s %14s %14s\n", "region", "write p50", "weak-read p50");
  for (const auto& [region, w] : writes) {
    auto it = reads.find(region);
    std::printf("  %-10s %14s %14s\n", region_name(region), format_ms(w.median()).c_str(),
                it != reads.end() ? format_ms(it->second.median()).c_str() : "-");
  }

  // Cross-shard MGET: one fan-out read over keys owned by different shards.
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("demo-" + std::to_string(i));
  std::vector<std::pair<std::string, Bytes>> pairs;
  for (const std::string& k : keys) pairs.emplace_back(k, Bytes(8, 0x11));

  auto client = sys.make_client(Site{Region::Virginia, 0});
  client->mput(pairs, [&](ShardedClient::MputResult res, Duration lat) {
    std::printf("\nMPUT of %zu keys touched %zu shards in %s (atomic per shard only)\n",
                keys.size(), res.shard_seqs.size(), format_ms(lat).c_str());
    client->mget(keys, [&](std::vector<ShardedClient::MgetEntry> entries, Duration mlat) {
      std::printf("MGET fan-out returned in %s:\n", format_ms(mlat).c_str());
      for (const auto& e : entries) {
        std::printf("  %-8s -> shard %u (seq %llu) %s\n", e.key.c_str(), e.shard,
                    static_cast<unsigned long long>(e.shard_seq), e.ok ? "hit" : "miss");
      }
    });
  });
  world.run_for(10 * kSecond);

  std::printf("\nEach shard orders writes in its own agreement group, so weak reads\n"
              "stay region-local and aggregate write throughput scales with shards\n"
              "(see ./micro_sharding); cross-shard MGET/MPUT are not atomic across\n"
              "shards — per-key shard sequence numbers make the split visible.\n");
  return 0;
}
