// Quickstart: bring up a complete Spider deployment (agreement group in
// Virginia, execution groups in four regions), run a client through writes
// and all three read flavours, and print the observed response times.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "sim/stats.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/drive.hpp"

using namespace spider;

namespace {

/// Runs the event loop until `done` flips or the timeout passes.
void run_until_done(World& world, bool& done, Duration timeout = 10 * kSecond) {
  drive::run_until(world, [&] { return done; }, timeout);
}

}  // namespace

int main() {
  // A deterministic simulated world: network latencies follow EC2's
  // region/availability-zone topology, crypto costs model RSA-1024.
  World world(/*seed=*/2026);

  // Default topology = the paper's evaluation setup: 3fa+1 = 4 agreement
  // replicas across Virginia AZs, one 2fe+1 = 3 replica execution group in
  // each of Virginia, Oregon, Ireland and Tokyo.
  SpiderSystem spider(world, SpiderTopology{});
  std::printf("Spider is up: %zu agreement replicas, %zu execution groups\n",
              spider.agreement_size(), spider.group_ids().size());

  // A client in Tokyo automatically attaches to the Tokyo execution group.
  auto client = spider.make_client(Site{Region::Tokyo, 0});
  std::printf("client %u attached to group %u (%s)\n\n", client->id(), client->group().group,
              region_name(spider.group_region(client->group().group)));

  // 1. A linearizable write: one wide-area round trip Tokyo -> Virginia.
  bool done = false;
  client->write(kv_put("greeting", to_bytes(std::string("hello spider"))),
                [&](Bytes reply, Duration latency) {
                  KvReply r = kv_decode_reply(reply);
                  std::printf("write      -> %-7s in %s\n", r.ok ? "ok" : "failed",
                              format_ms(latency).c_str());
                  done = true;
                });
  run_until_done(world, done);

  // 2. A weakly consistent read: answered entirely within Tokyo (<2 ms).
  done = false;
  client->weak_read(kv_get("greeting"), [&](Bytes reply, Duration latency) {
    KvReply r = kv_decode_reply(reply);
    std::printf("weak read  -> \"%s\" in %s\n", to_string(r.value).c_str(),
                format_ms(latency).c_str());
    done = true;
  });
  run_until_done(world, done);

  // 3. A strongly consistent read: ordered by the agreement group, so it
  //    also costs one wide-area round trip — but is guaranteed fresh.
  done = false;
  client->strong_read(kv_get("greeting"), [&](Bytes reply, Duration latency) {
    KvReply r = kv_decode_reply(reply);
    std::printf("strong read-> \"%s\" in %s\n", to_string(r.value).c_str(),
                format_ms(latency).c_str());
    done = true;
  });
  run_until_done(world, done);

  // A client next to the agreement group sees single-digit-ms writes.
  auto va_client = spider.make_client(Site{Region::Virginia, 1});
  done = false;
  va_client->write(kv_put("local", to_bytes(std::string("fast"))),
                   [&](Bytes, Duration latency) {
                     std::printf("\nVirginia client write -> %s (agreement is local)\n",
                                 format_ms(latency).c_str());
                     done = true;
                   });
  run_until_done(world, done);

  std::printf("\nsimulated time elapsed: %s\n", format_ms(world.now()).c_str());
  return 0;
}
