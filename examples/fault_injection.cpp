// Fault injection tour (paper §3.7 + crash-recovery + Byzantine-schedule
// extensions): Byzantine execution replicas that corrupt replies or drop
// request forwarding, an *equivocating* PBFT primary and a forged
// checkpoint certificate (both survived by the protocol), a
// crashed-and-restarted agreement leader (view change + checkpoint
// rejoin), and a crash-recovered execution replica that re-initializes
// through checkpoint state transfer — all scripted as timed windows on a
// deterministic FaultPlan, while clients keep getting correct answers.
//
//   $ ./examples/fault_injection
#include <cstdio>

#include "sim/fault_plan.hpp"
#include "sim/stats.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/drive.hpp"

using namespace spider;

int main() {
  World world(1234);
  SpiderTopology topo;
  topo.ka = 8;
  topo.ke = 8;
  topo.commit_capacity = 16;
  topo.request_timeout = kSecond;
  topo.view_change_timeout = 2 * kSecond;
  SpiderSystem spider(world, topo);

  // The fault plan drives every fault in this tour. Crash/restart actions
  // go through the system's crash-recovery hooks: a crash destroys the
  // replica process (volatile state and all), a restart rebuilds it under
  // the same NodeId and lets the protocol recover it. Byzantine windows go
  // through set_byzantine: the flags turn on at the window start and off
  // at its end, surviving a crash/restart in between.
  FaultPlan plan(world);
  plan.on_crash = [&spider](NodeId n) { spider.crash_node(n); };
  plan.on_restart = [&spider](NodeId n) { spider.restart_node(n); };
  plan.on_byzantine = [&spider](NodeId n, const ByzantineFlags& f) {
    spider.set_byzantine(n, f);
  };

  auto client = spider.make_client(Site{Region::Oregon, 0});
  GroupId g = client->group().group;

  std::printf("== 1. Byzantine execution replica corrupts its replies ==\n");
  plan.corrupt_replies_at(world.now(), spider.exec(g, 0).id(), 4 * kSecond);
  world.run_for(kMillisecond);
  drive::KvOutcome w = drive::blocking_write(world, *client, "account", "100");
  std::printf("   write %s in %s  (fe+1 matching correct replies outvote it)\n",
              w.ok ? "succeeded" : "FAILED", format_ms(w.latency).c_str());

  std::printf("== 2. Another replica silently drops request forwarding ==\n");
  plan.drop_forwarding_at(world.now(), spider.exec(g, 1).id(), 4 * kSecond);
  world.run_for(kMillisecond);
  w = drive::blocking_write(world, *client, "account", "90");
  std::printf("   write %s in %s  (fe+1 correct forwarders satisfy the IRMC)\n",
              w.ok ? "succeeded" : "FAILED", format_ms(w.latency).c_str());
  world.run_for(5 * kSecond);  // both Byzantine windows end

  std::printf("== 2b. The PBFT primary equivocates; a replica forges checkpoints ==\n");
  // The view-0 primary sends conflicting pre-prepares to disjoint halves
  // of the agreement group: neither digest can reach a quorum (quorum
  // intersection), the request timers fire, and an honest view takes
  // over — each write still commits exactly once. Meanwhile another
  // agreement replica pushes checkpoint votes and forged f+1 certificates
  // for a tampered state digest; correct replicas reject both.
  ViewNr view_before = spider.agreement(1).consensus().view();
  plan.equivocate_at(world.now(), spider.agreement(0).id(), 6 * kSecond);
  plan.forge_checkpoints_at(world.now(), spider.agreement(1).id(), 6 * kSecond);
  world.run_for(kMillisecond);
  w = drive::blocking_write(world, *client, "account", "85");
  std::printf("   write %s in %s despite the equivocation; view %llu -> %llu\n",
              w.ok ? "succeeded" : "FAILED", format_ms(w.latency).c_str(),
              static_cast<unsigned long long>(view_before),
              static_cast<unsigned long long>(spider.agreement(1).consensus().view()));
  drive::KvOutcome check = drive::blocking_strong_read(world, *client, "account");
  std::printf("   strong read -> \"%s\" (committed exactly once, forged certs rejected)\n",
              to_string(check.value).c_str());
  world.run_for(7 * kSecond);  // Byzantine windows end; system honest again

  std::printf("== 3. Agreement leader crashes (process destroyed): view change ==\n");
  ViewNr view_now = spider.agreement(1).consensus().view();
  std::size_t leader_idx =
      static_cast<std::size_t>(view_now % spider.agreement_size());
  std::size_t witness_idx = (leader_idx + 1) % spider.agreement_size();
  NodeId leader = spider.agreement(leader_idx).id();
  plan.crash_at(world.now(), leader);
  world.run_for(kMillisecond);
  w = drive::blocking_write(world, *client, "account", "80");
  std::printf("   write %s in %s; view %llu -> %llu\n", w.ok ? "succeeded" : "FAILED",
              format_ms(w.latency).c_str(), static_cast<unsigned long long>(view_now),
              static_cast<unsigned long long>(
                  spider.agreement(witness_idx).consensus().view()));

  std::printf("== 4. ...and restarts: the fresh process rejoins its view ==\n");
  plan.restart_at(world.now(), leader);
  for (int i = 0; i < 10; ++i) {
    drive::blocking_write(world, *client, "account", std::to_string(70 - i));
  }
  world.run_for(5 * kSecond);
  std::printf("   restarted leader: view = %llu (group: %llu), rejoined by f+1 evidence\n",
              static_cast<unsigned long long>(
                  spider.agreement(leader_idx).consensus().view()),
              static_cast<unsigned long long>(
                  spider.agreement(witness_idx).consensus().view()));

  std::printf("== 5. Crash-recovered execution replica catches up via checkpoints ==\n");
  NodeId lagger = spider.exec(g, 2).id();
  plan.crash_at(world.now(), lagger);
  world.run_for(kMillisecond);
  for (int i = 0; i < 25; ++i) {
    drive::blocking_write(world, *client, "burst" + std::to_string(i), "x");
  }
  std::printf("   while down, the group executed up to seq %llu without it\n",
              static_cast<unsigned long long>(spider.exec(g, 0).executed_seq()));
  plan.restart_at(world.now(), lagger);
  world.run_for(kMillisecond);
  drive::blocking_write(world, *client, "after", "y");
  world.run_for(10 * kSecond);
  std::printf("   after restart it reached seq %llu via %llu checkpoint catch-up(s)\n",
              static_cast<unsigned long long>(spider.exec(g, 2).executed_seq()),
              static_cast<unsigned long long>(spider.exec(g, 2).catchups()));

  drive::KvOutcome r = drive::blocking_weak_read(world, *client, "account");
  std::printf("\nfault schedule executed (%llu actions):\n%s",
              static_cast<unsigned long long>(plan.actions_fired()), plan.describe().c_str());
  std::printf("\nfinal state check: account = \"%s\" (%s)\n", to_string(r.value).c_str(),
              r.ok ? "ok" : "missing");
  return 0;
}
