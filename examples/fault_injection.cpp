// Fault injection tour (paper §3.7): Byzantine execution replicas that
// corrupt replies or drop request forwarding, a crashed agreement leader
// (handled by an intra-region view change), and a lagging replica that
// recovers through the checkpoint protocol — all while clients keep
// getting correct answers.
//
//   $ ./examples/fault_injection
#include <cstdio>

#include "sim/stats.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

using namespace spider;

namespace {

struct Outcome {
  bool ok = false;
  Bytes value;
  Duration latency = 0;
};

Outcome blocking_write(World& world, SpiderClient& client, const std::string& key,
                       const std::string& value) {
  Outcome out;
  bool done = false;
  client.write(kv_put(key, to_bytes(value)), [&](Bytes reply, Duration lat) {
    KvReply r = kv_decode_reply(reply);
    out = Outcome{r.ok, r.value, lat};
    done = true;
  });
  Time deadline = world.now() + 60 * kSecond;
  while (!done && world.now() < deadline) world.queue().run_next();
  return out;
}

Outcome blocking_weak_read(World& world, SpiderClient& client, const std::string& key) {
  Outcome out;
  bool done = false;
  client.weak_read(kv_get(key), [&](Bytes reply, Duration lat) {
    KvReply r = kv_decode_reply(reply);
    out = Outcome{r.ok, r.value, lat};
    done = true;
  });
  Time deadline = world.now() + 60 * kSecond;
  while (!done && world.now() < deadline) world.queue().run_next();
  return out;
}

}  // namespace

int main() {
  World world(1234);
  SpiderTopology topo;
  topo.ka = 8;
  topo.ke = 8;
  topo.commit_capacity = 16;
  SpiderSystem spider(world, topo);

  auto client = spider.make_client(Site{Region::Oregon, 0});
  GroupId g = client->group().group;

  std::printf("== 1. Byzantine execution replica corrupts its replies ==\n");
  spider.exec(g, 0).corrupt_replies = true;
  Outcome w = blocking_write(world, *client, "account", "100");
  std::printf("   write %s in %s  (fe+1 matching correct replies outvote it)\n",
              w.ok ? "succeeded" : "FAILED", format_ms(w.latency).c_str());

  std::printf("== 2. Another replica silently drops request forwarding ==\n");
  spider.exec(g, 1).drop_forwarding = true;
  w = blocking_write(world, *client, "account", "90");
  std::printf("   write %s in %s  (fe+1 correct forwarders satisfy the IRMC)\n",
              w.ok ? "succeeded" : "FAILED", format_ms(w.latency).c_str());
  spider.exec(g, 0).corrupt_replies = false;
  spider.exec(g, 1).drop_forwarding = false;

  std::printf("== 3. Agreement leader crashes: intra-region view change ==\n");
  world.net().set_node_down(spider.agreement(0).id(), true);
  w = blocking_write(world, *client, "account", "80");
  std::printf("   write %s in %s; new view = %llu\n", w.ok ? "succeeded" : "FAILED",
              format_ms(w.latency).c_str(),
              static_cast<unsigned long long>(spider.agreement(1).consensus().view()));
  w = blocking_write(world, *client, "account", "70");
  std::printf("   next write back to %s (leader change never crossed a region)\n",
              format_ms(w.latency).c_str());

  std::printf("== 4. Crashed execution replica catches up via checkpoints ==\n");
  NodeId lagger = spider.exec(g, 2).id();
  world.net().set_node_down(lagger, true);
  for (int i = 0; i < 25; ++i) {
    blocking_write(world, *client, "burst" + std::to_string(i), "x");
  }
  std::printf("   while down, replica executed up to seq %llu (healthy: %llu)\n",
              static_cast<unsigned long long>(spider.exec(g, 2).executed_seq()),
              static_cast<unsigned long long>(spider.exec(g, 0).executed_seq()));
  world.net().set_node_down(lagger, false);
  blocking_write(world, *client, "after", "y");
  world.run_for(10 * kSecond);
  std::printf("   after recovery it reached seq %llu via %llu checkpoint catch-up(s)\n",
              static_cast<unsigned long long>(spider.exec(g, 2).executed_seq()),
              static_cast<unsigned long long>(spider.exec(g, 2).catchups()));

  Outcome r = blocking_weak_read(world, *client, "account");
  std::printf("\nfinal state check: account = \"%s\" (%s)\n", to_string(r.value).c_str(),
              r.ok ? "ok" : "missing");
  return 0;
}
