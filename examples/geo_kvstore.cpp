// Geo-replicated KV store under load: clients in four regions issue a mixed
// workload (writes + weak reads) against Spider and against flat BFT, and
// the per-region latency distributions are printed side by side — a
// miniature version of the paper's Figures 7 and 8.
//
//   $ ./examples/geo_kvstore
#include <cstdio>
#include <map>

#include "baselines/bft_system.hpp"
#include "sim/stats.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

using namespace spider;

namespace {

struct Measurement {
  std::map<Region, LatencyStats> writes;
  std::map<Region, LatencyStats> reads;
};

template <typename MakeClient>
Measurement drive(World& world, MakeClient make_client) {
  const std::vector<Region> regions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                       Region::Tokyo};
  Measurement m;
  struct Ctx {
    std::unique_ptr<SpiderClient> client;
    Region region;
    int remaining = 20;
  };
  std::vector<std::shared_ptr<Ctx>> ctxs;

  for (Region r : regions) {
    for (int i = 0; i < 3; ++i) {
      auto ctx = std::make_shared<Ctx>();
      ctx->client = make_client(Site{r, static_cast<std::uint8_t>(i)});
      ctx->region = r;
      ctxs.push_back(ctx);
    }
  }

  // Each client alternates write / weak read until its budget is used up.
  std::function<void(std::shared_ptr<Ctx>)> step = [&](std::shared_ptr<Ctx> ctx) {
    if (ctx->remaining-- <= 0) return;
    std::string key = "key-" + std::to_string(ctx->client->id());
    if (ctx->remaining % 2 == 0) {
      ctx->client->write(kv_put(key, Bytes(160, 0x42)), [&, ctx](Bytes, Duration lat) {
        m.writes[ctx->region].add(lat);
        step(ctx);
      });
    } else {
      ctx->client->weak_read(kv_get(key), [&, ctx](Bytes, Duration lat) {
        m.reads[ctx->region].add(lat);
        step(ctx);
      });
    }
  };
  for (auto& ctx : ctxs) step(ctx);

  world.run_for(120 * kSecond);
  return m;
}

void print(const char* title, const Measurement& m) {
  std::printf("%s\n", title);
  std::printf("  %-10s %14s %14s\n", "region", "write p50", "weak-read p50");
  for (const auto& [region, w] : m.writes) {
    const LatencyStats* r = nullptr;
    auto it = m.reads.find(region);
    if (it != m.reads.end()) r = &it->second;
    std::printf("  %-10s %14s %14s\n", region_name(region), format_ms(w.median()).c_str(),
                r ? format_ms(r->median()).c_str() : "-");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Mixed read/write workload, 12 clients across 4 regions\n\n");
  {
    World world(7);
    SpiderSystem sys(world, SpiderTopology{});
    print("SPIDER (agreement in Virginia, execution groups everywhere):",
          drive(world, [&](Site s) { return sys.make_client(s); }));
  }
  {
    World world(7);
    std::vector<Site> sites = {Site{Region::Virginia, 0}, Site{Region::Oregon, 0},
                               Site{Region::Ireland, 0}, Site{Region::Tokyo, 0}};
    BftSystem sys(world, BftConfig{sites});
    print("Flat BFT (PBFT across regions, the paper's baseline):",
          drive(world, [&](Site s) { return sys.make_client(s); }));
  }
  std::printf("Note how Spider's weak reads stay local in every region while\n"
              "flat BFT needs a wide-area quorum even for weak reads.\n");
  return 0;
}
