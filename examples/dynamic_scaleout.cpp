// Dynamic reconfiguration (paper §3.6): a deployment starts with execution
// groups in Virginia and Oregon; clients appear in Sao Paulo with terrible
// read latencies; the administrator adds a Sao Paulo execution group at
// runtime and the same clients' weak reads drop to local latency. Finally
// the group is removed again.
//
//   $ ./examples/dynamic_scaleout
#include <cstdio>

#include "sim/stats.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/drive.hpp"

using namespace spider;

namespace {

Duration measured_weak_read(World& world, SpiderClient& client, const std::string& key) {
  drive::KvOutcome out = drive::blocking_weak_read(world, client, key, 10 * kSecond);
  return out.done ? out.latency : -1;
}

bool blocking_write(World& world, SpiderClient& client, const std::string& key,
                    const std::string& value) {
  return drive::blocking_write(world, client, key, value, 30 * kSecond).ok;
}

}  // namespace

int main() {
  World world(99);
  SpiderTopology topo;
  topo.exec_regions = {Region::Virginia, Region::Oregon};
  SpiderSystem spider(world, topo);

  auto writer = spider.make_client(Site{Region::Virginia, 0});
  blocking_write(world, *writer, "inventory", "42 units");

  // Sao Paulo clients initially attach to the nearest existing group
  // (Virginia) — weak reads pay a wide-area round trip.
  auto sp_client = spider.make_client(Site{Region::SaoPaulo, 0});
  std::printf("before scale-out: SP client reads from %s\n",
              region_name(spider.group_region(sp_client->group().group)));
  Duration before = measured_weak_read(world, *sp_client, "inventory");
  std::printf("  weak read latency: %s\n\n", format_ms(before).c_str());

  // The admin adds a Sao Paulo execution group at runtime: one ordered
  // <AddGroup> command, no protocol changes anywhere else.
  bool added = false;
  GroupId sp_group = spider.add_group(Region::SaoPaulo, [&] { added = true; });
  drive::run_until(world, [&] { return added; });
  std::printf("AddGroup agreed: group %u in Sao Paulo is live\n", sp_group);

  // Push a write through so the new group picks up a checkpoint, then let
  // the background catch-up finish.
  blocking_write(world, *writer, "inventory", "41 units");
  world.run_for(10 * kSecond);

  // The client switches to the now-local group.
  sp_client->switch_group(spider.group_info(sp_group));
  Duration after = measured_weak_read(world, *sp_client, "inventory");
  std::printf("after scale-out:  SP client reads from %s\n",
              region_name(spider.group_region(sp_client->group().group)));
  std::printf("  weak read latency: %s (was %s)\n\n", format_ms(after).c_str(),
              format_ms(before).c_str());

  // Evening in Sao Paulo: the clients shut down, the group is removed.
  sp_client->switch_group(spider.group_info(spider.nearest_group(Region::Virginia)));
  bool removed = false;
  spider.remove_group(sp_group, [&] { removed = true; });
  drive::run_until(world, [&] { return removed; });
  std::printf("RemoveGroup agreed: %zu groups remain; system keeps serving\n",
              spider.group_ids().size());
  std::printf("  final write: %s\n",
              blocking_write(world, *writer, "inventory", "40 units") ? "ok" : "failed");
  return 0;
}
