#!/usr/bin/env python3
"""Validate Spider observability artifacts against docs/obs/*.schema.json.

Stdlib only (no jsonschema dependency): implements the small subset of JSON
Schema the two obs schemas use — type/enum/const/required/properties/
additionalProperties/minimum/minLength/pattern/allOf/if-then-else — so CI
can gate exported traces and metrics snapshots without installing anything.

Usage:
    check_obs_json.py metrics <snapshot.json>   # JSON-lines, one obj/line
    check_obs_json.py trace <trace.json>        # Chrome trace-event file
"""

import json
import re
import sys
from pathlib import Path

SCHEMA_DIR = Path(__file__).resolve().parent.parent / "docs" / "obs"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def _check(value, schema, path, errors):
    """Appends 'path: problem' strings to errors; subset-of-draft-07."""
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
        return
    if "type" in schema:
        expected = _TYPES[schema["type"]]
        ok = isinstance(value, expected)
        if ok and schema["type"] in ("number", "integer") and isinstance(value, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {schema['type']}, got {type(value).__name__}")
            return
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    if isinstance(value, str):
        if "minLength" in schema and len(value) < schema["minLength"]:
            errors.append(f"{path}: shorter than minLength {schema['minLength']}")
        if "pattern" in schema and not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match {schema['pattern']!r}")
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key {req!r}")
        for k, v in value.items():
            if k in props:
                _check(v, props[k], f"{path}.{k}", errors)
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected key {k!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{path}[{i}]", errors)
    for clause in schema.get("allOf", []):
        if "if" in clause:
            probe = []
            _check(value, clause["if"], path, probe)
            branch = clause.get("then") if not probe else clause.get("else")
            if branch:
                _check(value, branch, path, errors)
        else:
            _check(value, clause, path, errors)


def load_schema(name):
    with open(SCHEMA_DIR / name, encoding="utf-8") as f:
        return json.load(f)


def check_metrics(path):
    schema = load_schema("metrics.schema.json")
    errors = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    objs = 0
    for n, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {n}: not valid JSON ({e})")
            continue
        objs += 1
        _check(obj, schema, f"line {n}", errors)
    if objs == 0:
        errors.append("no metric lines found")
    return objs, errors


def check_trace(path):
    schema = load_schema("trace.schema.json")
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        return 0, [f"not valid JSON: {e}"]
    _check(doc, schema, "$", errors)
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else []
    # Beyond per-event shape: async begin/end pairing per correlation id.
    depth = {}
    for ev in events:
        if not isinstance(ev, dict):
            continue
        if ev.get("ph") == "b":
            depth[ev.get("id")] = depth.get(ev.get("id"), 0) + 1
        elif ev.get("ph") == "e":
            d = depth.get(ev.get("id"), 0) - 1
            if d < 0:
                errors.append(f"async end without begin for id {ev.get('id')}")
            depth[ev.get("id")] = max(d, 0)
    return len(events), errors


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("metrics", "trace"):
        print(__doc__, file=sys.stderr)
        return 2
    kind, path = sys.argv[1], sys.argv[2]
    count, errors = (check_metrics if kind == "metrics" else check_trace)(path)
    for e in errors[:50]:
        print(f"FAIL {path}: {e}", file=sys.stderr)
    if errors:
        print(f"FAIL {path}: {len(errors)} schema violations", file=sys.stderr)
        return 1
    unit = "metric lines" if kind == "metrics" else "trace events"
    print(f"OK {path}: {count} {unit} valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
